"""FROZEN seed trial executor — the pre-shared-memory orchestration plane.

This is a verbatim freeze of ``repro/orchestrate/executor.py`` as it
stood before the shared-memory instance plane and batched dispatch
landed, kept as the benchmark baseline for ``repro bench orchestrate``
(the same convention as ``repro/core/_seed_engine.py`` and
``repro/multilevel/_seed_coarsen.py``).  Its defining costs — every
worker receives a full copy of every instance, every trial is a
dedicated task/result queue round-trip, the supervisor polls at 50 ms
granularity, and every respawn re-pickles the whole payload — are
exactly what the live executor eliminates.  Do not modify; do not
import from production code paths.

Two execution paths with identical semantics:

* **Inline** (``workers <= 1`` and no timeout): trials run in-process
  in plan order.  No pickling, no subprocess startup — and exact
  backward compatibility with the old serial runner.
* **Pool**: ``workers`` long-lived ``multiprocessing`` processes, each
  with a dedicated task queue so the supervisor always knows which
  trial every worker holds.  That precise ownership is what makes hard
  per-trial wall-clock timeouts possible: a worker that exceeds the
  budget is terminated (SIGKILL if needed) and replaced, and its trial
  is retried or journaled as an error — the campaign never aborts.

Determinism: workers receive ``(trial_index, heuristic, instance,
seed)`` tuples; cut values depend only on the seed, so results are
identical to serial execution regardless of completion order.  The run
store orders by trial index afterwards.

Failure policy: an exception inside a trial, a worker crash, and a
timeout are all *attempt failures*.  A trial is retried up to
``max_retries`` extra times (transient failures heal), after which it
resolves to an error outcome carrying the last error text and the
attempt count.

The pool prefers the ``fork`` start method (cheap, no pickling of the
instance set) and falls back to the platform default elsewhere; under
``spawn``, heuristics and hypergraphs must be picklable — all shipped
partitioners are.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.multistart import Bipartitioner
from repro.hypergraph.hypergraph import Hypergraph
from repro.orchestrate.plan import TrialPlan
from repro.orchestrate.store import TrialOutcome

#: callback(outcome, busy_workers, num_workers)
OutcomeCallback = Callable[[TrialOutcome, int, int], None]

_POLL_SECONDS = 0.05
_JOIN_SECONDS = 2.0
_ORPHAN_POLL_SECONDS = 5.0


def _pool_context() -> mp.context.BaseContext:
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _run_one(
    plan: TrialPlan,
    heuristics: Dict[str, Bipartitioner],
    instances: Dict[str, Hypergraph],
    fixed_parts: Optional[Dict[str, Sequence[Optional[int]]]],
) -> tuple:
    """Execute one trial; returns (cut, runtime_seconds, legal)."""
    partitioner = heuristics[plan.heuristic]
    hypergraph = instances[plan.instance]
    fp = fixed_parts.get(plan.instance) if fixed_parts else None
    t0 = time.perf_counter()
    result = partitioner.partition(hypergraph, seed=plan.seed, fixed_parts=fp)
    elapsed = time.perf_counter() - t0
    return (result.cut, elapsed, bool(result.legal))


def _worker_main(task_q, result_q, heuristics, instances, fixed_parts):
    """Worker loop: pull trial tuples, push result tuples, exit on None.

    Idle waits are bounded so a worker notices when the supervisor was
    SIGKILLed (reparenting changes ``getppid``) instead of lingering as
    an orphan blocked on its queue forever.
    """
    parent = os.getppid()
    while True:
        try:
            task = task_q.get(timeout=_ORPHAN_POLL_SECONDS)
        except queue.Empty:
            if os.getppid() != parent:
                return  # supervisor is gone; don't orphan
            continue
        if task is None:
            return
        index, heuristic, instance, seed = task
        plan = TrialPlan(
            index=index, heuristic=heuristic, instance=instance, seed=seed
        )
        try:
            payload = _run_one(plan, heuristics, instances, fixed_parts)
            result_q.put((index, "ok", payload))
        except Exception:
            result_q.put((index, "error", traceback.format_exc(limit=8)))


@dataclass
class _PendingTrial:
    plan: TrialPlan
    attempts: int = 0  #: failed attempts so far


class _Worker:
    """A pool worker plus the supervisor's view of what it holds."""

    def __init__(self, ctx, result_q, heuristics, instances, fixed_parts):
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(self.task_q, result_q, heuristics, instances, fixed_parts),
            daemon=True,
        )
        self.process.start()
        self.current: Optional[_PendingTrial] = None
        self.started_at = 0.0

    def assign(self, item: _PendingTrial) -> None:
        self.current = item
        self.started_at = time.monotonic()
        p = item.plan
        self.task_q.put((p.index, p.heuristic, p.instance, p.seed))

    def shutdown(self) -> None:
        try:
            self.task_q.put(None)
        except (ValueError, OSError):  # queue already closed
            pass
        self.process.join(timeout=_JOIN_SECONDS)
        if self.process.is_alive():
            self.terminate()

    def terminate(self) -> None:
        self.process.terminate()
        self.process.join(timeout=_JOIN_SECONDS)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=_JOIN_SECONDS)


@dataclass
class SeedExecutionPolicy:
    """Robustness knobs for a campaign execution."""

    workers: int = 1
    timeout_seconds: Optional[float] = None  #: per-trial wall clock
    max_retries: int = 0  #: extra attempts after the first failure

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")

    @property
    def use_pool(self) -> bool:
        """Timeouts require process isolation, so a timeout forces the
        pool even with one worker."""
        return self.workers > 1 or self.timeout_seconds is not None


def seed_execute_trials(
    trials: Sequence[TrialPlan],
    heuristics: Dict[str, Bipartitioner],
    instances: Dict[str, Hypergraph],
    fixed_parts: Optional[Dict[str, Sequence[Optional[int]]]] = None,
    policy: Optional[SeedExecutionPolicy] = None,
    on_outcome: Optional[OutcomeCallback] = None,
) -> List[TrialOutcome]:
    """Run every trial to an outcome (ok or error); never raises for
    trial-level failures.  Outcomes are returned sorted by trial index;
    ``on_outcome`` sees them in completion order, one call per trial."""
    policy = policy or SeedExecutionPolicy()
    if not trials:
        return []
    if policy.use_pool:
        outcomes = _execute_pool(
            trials, heuristics, instances, fixed_parts, policy, on_outcome
        )
    else:
        outcomes = _execute_inline(
            trials, heuristics, instances, fixed_parts, policy, on_outcome
        )
    return sorted(outcomes, key=lambda o: o.trial)


# ----------------------------------------------------------------------
def _ok_outcome(item: _PendingTrial, payload: tuple) -> TrialOutcome:
    cut, elapsed, legal = payload
    p = item.plan
    return TrialOutcome(
        trial=p.index,
        status="ok",
        heuristic=p.heuristic,
        instance=p.instance,
        seed=p.seed,
        cut=cut,
        runtime_seconds=elapsed,
        legal=legal,
        attempts=item.attempts + 1,
    )


def _error_outcome(item: _PendingTrial, message: str) -> TrialOutcome:
    p = item.plan
    return TrialOutcome(
        trial=p.index,
        status="error",
        heuristic=p.heuristic,
        instance=p.instance,
        seed=p.seed,
        error=message.strip(),
        attempts=item.attempts,
    )


def _execute_inline(trials, heuristics, instances, fixed_parts, policy,
                    on_outcome) -> List[TrialOutcome]:
    outcomes: List[TrialOutcome] = []
    for plan in trials:
        item = _PendingTrial(plan)
        while True:
            try:
                payload = _run_one(plan, heuristics, instances, fixed_parts)
                outcome = _ok_outcome(item, payload)
                break
            except Exception:
                item.attempts += 1
                if item.attempts > policy.max_retries:
                    outcome = _error_outcome(
                        item, traceback.format_exc(limit=8)
                    )
                    break
        outcomes.append(outcome)
        if on_outcome:
            on_outcome(outcome, 1, 1)
    return outcomes


def _execute_pool(trials, heuristics, instances, fixed_parts, policy,
                  on_outcome) -> List[TrialOutcome]:
    ctx = _pool_context()
    result_q = ctx.Queue()
    spawn = lambda: _Worker(ctx, result_q, heuristics, instances, fixed_parts)

    pending = deque(_PendingTrial(p) for p in trials)
    workers = [spawn() for _ in range(min(policy.workers, len(pending)))]
    inflight: Dict[int, _Worker] = {}
    outcomes: List[TrialOutcome] = []

    def resolve(outcome: TrialOutcome) -> None:
        outcomes.append(outcome)
        if on_outcome:
            busy = sum(1 for w in workers if w.current is not None)
            on_outcome(outcome, busy, len(workers))

    def fail(item: _PendingTrial, message: str) -> None:
        item.attempts += 1
        if item.attempts <= policy.max_retries:
            pending.append(item)
        else:
            resolve(_error_outcome(item, message))

    try:
        while len(outcomes) < len(trials):
            # 1. hand pending trials to idle live workers
            for w in workers:
                if not pending:
                    break
                if w.current is None and w.process.is_alive():
                    item = pending.popleft()
                    w.assign(item)
                    inflight[item.plan.index] = w

            # 2. drain results (short block, then whatever is queued)
            messages = []
            try:
                messages.append(result_q.get(timeout=_POLL_SECONDS))
                while True:
                    messages.append(result_q.get_nowait())
            except queue.Empty:
                pass
            for index, status, payload in messages:
                w = inflight.pop(index, None)
                if w is None:
                    continue  # stale message from a terminated worker
                item = w.current
                w.current = None
                if status == "ok":
                    resolve(_ok_outcome(item, payload))
                else:
                    fail(item, payload)

            # 3. enforce timeouts; recover from dead workers
            now = time.monotonic()
            for w in list(workers):
                item = w.current
                if item is None:
                    if not w.process.is_alive() and pending:
                        workers.remove(w)
                        workers.append(spawn())
                    continue
                timed_out = (
                    policy.timeout_seconds is not None
                    and now - w.started_at > policy.timeout_seconds
                )
                died = not w.process.is_alive()
                if not (timed_out or died):
                    continue
                inflight.pop(item.plan.index, None)
                w.current = None
                workers.remove(w)
                w.terminate()
                if timed_out:
                    fail(
                        item,
                        f"trial exceeded wall-clock timeout of "
                        f"{policy.timeout_seconds:g}s",
                    )
                else:
                    fail(
                        item,
                        f"worker process died "
                        f"(exitcode {w.process.exitcode})",
                    )
                if pending:
                    workers.append(spawn())
    finally:
        for w in workers:
            w.shutdown()
    return outcomes
