"""Parallel, crash-safe campaign orchestration.

Turns a declarative :class:`~repro.evaluation.campaign.CampaignSpec`
into a deterministic, parallel, resumable execution:

* :mod:`~repro.orchestrate.plan` — explicit trial expansion with
  per-trial seeds and a spec fingerprint;
* :mod:`~repro.orchestrate.store` — append-only JSONL journal + run
  metadata, fsynced per trial, crash-tolerant on load;
* :mod:`~repro.orchestrate.executor` — inline or multiprocessing
  execution with per-trial timeouts and bounded retries, a zero-copy
  shared-memory instance plane, adaptively batched dispatch and sticky
  per-worker hierarchy caches;
* :mod:`~repro.orchestrate.events` — structured progress events and a
  CLI progress printer;
* :mod:`~repro.orchestrate.orchestrator` — the driver gluing the
  above into ``orchestrate_campaign``.

Parallel runs are byte-identical to serial ones (same seeds, same
cuts, canonical record order); killed runs resume without rerunning
journaled trials.
"""

from repro.orchestrate.events import ProgressEvent, ProgressPrinter
from repro.orchestrate.executor import ExecutionPolicy, execute_trials
from repro.orchestrate.orchestrator import (
    Orchestrator,
    build_meta,
    orchestrate_campaign,
)
from repro.orchestrate.plan import TrialPlan, expand_spec, spec_fingerprint
from repro.orchestrate.store import (
    RunStore,
    StoreStatus,
    TrialOutcome,
    machine_info,
    parse_journal_line,
)

__all__ = [
    "ExecutionPolicy",
    "Orchestrator",
    "ProgressEvent",
    "ProgressPrinter",
    "RunStore",
    "StoreStatus",
    "TrialOutcome",
    "TrialPlan",
    "build_meta",
    "execute_trials",
    "expand_spec",
    "machine_info",
    "orchestrate_campaign",
    "parse_journal_line",
    "spec_fingerprint",
]
