"""Crash-safe run store: append-only JSONL journal plus run metadata.

Layout of a campaign directory::

    <dir>/
        meta.json       # spec hash, trial count, machine info, CLI args
        journal.jsonl   # one TrialOutcome per line, appended + fsynced

Every completed (or failed) trial is appended and fsynced immediately,
so a kill -9 loses at most the trial that was in flight.  Loading
tolerates a truncated final line — the classic crash artifact — by
skipping lines that do not parse; the corresponding trials simply rerun
on resume.  Duplicate journal entries for the same trial index (possible
if a crash lands between the append and the scheduler's bookkeeping)
resolve to the *last* occurrence.

The journal stores :class:`TrialOutcome`, a superset of
:class:`~repro.evaluation.records.TrialRecord`: successful outcomes
convert losslessly to records (what the reporting stack consumes), and
failed outcomes keep the error text and attempt count instead of
aborting the campaign.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from repro.core.perf import PerfCounters
from repro.evaluation.records import TrialRecord

META_FILENAME = "meta.json"
JOURNAL_FILENAME = "journal.jsonl"
PERF_FILENAME = "perf.json"


@dataclass(frozen=True)
class TrialOutcome:
    """Journal entry: one attempt-resolved trial, successful or not."""

    trial: int  #: index into the canonical plan
    status: str  #: ``"ok"`` or ``"error"``
    heuristic: str
    instance: str
    seed: int
    cut: Optional[float] = None
    runtime_seconds: Optional[float] = None
    legal: Optional[bool] = None
    error: Optional[str] = None
    attempts: int = 1
    #: Scenario axes: part count and ranked objective ("cut",
    #: "connectivity" or "hpwl").  Journals written before these fields
    #: existed parse with the 2-way defaults.
    k: int = 2
    objective: str = "cut"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_record(self) -> TrialRecord:
        """Convert a successful outcome to the reporting stack's atom."""
        if not self.ok:
            raise ValueError(f"trial {self.trial} failed: {self.error}")
        return TrialRecord(
            heuristic=self.heuristic,
            instance=self.instance,
            seed=self.seed,
            cut=self.cut,
            runtime_seconds=self.runtime_seconds,
            legal=self.legal,
            k=self.k,
            objective=self.objective,
        )


@dataclass(frozen=True)
class StoreStatus:
    """Aggregate journal state for ``repro campaign status``."""

    total: int
    done: int
    ok: int
    errors: int

    @property
    def remaining(self) -> int:
        return self.total - self.done


def parse_journal_line(line: str) -> Optional[TrialOutcome]:
    """Parse one journal line into a :class:`TrialOutcome`, or ``None``
    for blank or unparseable lines (e.g. a line truncated by a crash —
    the corresponding trial simply reruns on resume).  Shared by the
    batch reader (:meth:`RunStore.outcomes`) and the streaming tailer
    (:class:`repro.evaluation.streaming.JournalTail`) so both sides of
    the report pipeline agree on what counts as a record."""
    line = line.strip()
    if not line:
        return None
    try:
        return TrialOutcome(**json.loads(line))
    except (ValueError, TypeError):
        return None


def machine_info() -> Dict[str, object]:
    """Host facts recorded for the paper's CPU-time normalization
    (footnote 9): reported times are only comparable across machines
    via a calibration factor, so every run records where it ran."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "processor": platform.processor() or platform.machine(),
        "cpu_count": os.cpu_count(),
    }


class RunStore:
    """One campaign's persistent journal + metadata."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self._tail_checked = False

    # -- paths ----------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        return self.directory / META_FILENAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_FILENAME

    @property
    def perf_path(self) -> Path:
        return self.directory / PERF_FILENAME

    def exists(self) -> bool:
        """True if this directory already holds an initialized store."""
        return self.meta_path.exists()

    # -- metadata -------------------------------------------------------
    def initialize(self, meta: Dict[str, object]) -> None:
        """Create the store directory and write metadata atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.meta_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.meta_path)

    def load_meta(self) -> Dict[str, object]:
        if not self.exists():
            raise FileNotFoundError(f"no campaign store at {self.directory}")
        return json.loads(self.meta_path.read_text(encoding="utf-8"))

    # -- journal --------------------------------------------------------
    def _heal_torn_tail(self) -> None:
        """If a crash left a partial final line (no trailing newline),
        terminate it so the next append starts on a fresh line instead
        of concatenating into the garbage.  Checked once per store
        instance, before its first append."""
        if not self.journal_path.exists():
            return
        with open(self.journal_path, "rb+") as f:
            f.seek(0, os.SEEK_END)
            if f.tell() == 0:
                return
            f.seek(-1, os.SEEK_END)
            if f.read(1) != b"\n":
                f.write(b"\n")

    def append(self, outcome: TrialOutcome) -> None:
        """Append one outcome and fsync so it survives a crash."""
        if not self._tail_checked:
            self._heal_torn_tail()
            self._tail_checked = True
        line = json.dumps(asdict(outcome), sort_keys=True)
        with open(self.journal_path, "a", encoding="ascii") as f:
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    def outcomes(self) -> List[TrialOutcome]:
        """All journaled outcomes, deduplicated by trial index (last
        occurrence wins), sorted by trial index.  Unparseable lines —
        e.g. a line truncated by a crash — are skipped; those trials
        will simply rerun on resume."""
        if not self.journal_path.exists():
            return []
        by_trial: Dict[int, TrialOutcome] = {}
        with open(self.journal_path, "r", encoding="ascii") as f:
            for line in f:
                outcome = parse_journal_line(line)
                if outcome is None:
                    continue  # truncated / corrupt line: rerun that trial
                by_trial[outcome.trial] = outcome
        return [by_trial[k] for k in sorted(by_trial)]

    def completed_trials(self) -> Set[int]:
        """Trial indices that need not rerun (both ok and error: an
        error outcome means its bounded retries were already spent)."""
        return {o.trial for o in self.outcomes()}

    def records(self) -> List[TrialRecord]:
        """Successful trials as reporting-stack records, in canonical
        (plan index) order — identical to a serial run's record list."""
        return [o.to_record() for o in self.outcomes() if o.ok]

    def errors(self) -> List[TrialOutcome]:
        return [o for o in self.outcomes() if not o.ok]

    # -- perf aggregates ------------------------------------------------
    def merge_perf(self, totals: Dict[str, PerfCounters]) -> None:
        """Fold per-heuristic kernel counters into ``perf.json``.

        Merging (not overwriting) keeps the file campaign-cumulative
        across resumed invocations: each invocation contributes only the
        trials it actually executed.  Written atomically, like
        ``meta.json``.
        """
        if not totals:
            return
        merged = self.load_perf()
        for heuristic, perf in totals.items():
            acc = merged.setdefault(heuristic, PerfCounters())
            acc.merge(perf)
        payload = {
            name: dict(
                {
                    field_name: getattr(perf, field_name)
                    for field_name in (
                        PerfCounters.COUNT_FIELDS + PerfCounters.TIMING_FIELDS
                    )
                },
                # The backend tag is a string ("mixed" after merging
                # different backends), so it rides outside the numeric
                # field tuples.
                backend=perf.backend,
            )
            for name, perf in sorted(merged.items())
        }
        tmp = self.perf_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.perf_path)

    def load_perf(self) -> Dict[str, PerfCounters]:
        """Per-heuristic counters from ``perf.json`` (empty if absent)."""
        if not self.perf_path.exists():
            return {}
        raw = json.loads(self.perf_path.read_text(encoding="utf-8"))
        out: Dict[str, PerfCounters] = {}
        for heuristic, fields in raw.items():
            perf = PerfCounters()
            for field_name, value in fields.items():
                setattr(perf, field_name, value)
            out[heuristic] = perf
        return out

    def status(self) -> StoreStatus:
        meta = self.load_meta()
        outcomes = self.outcomes()
        ok = sum(1 for o in outcomes if o.ok)
        return StoreStatus(
            total=int(meta.get("total_trials", len(outcomes))),
            done=len(outcomes),
            ok=ok,
            errors=len(outcomes) - ok,
        )
