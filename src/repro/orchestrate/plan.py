"""Trial scheduler: expand a campaign spec into an explicit trial plan.

A campaign is heuristics × instances × independent starts.  The
orchestrator never iterates that cross product implicitly — it first
*expands* it into a flat, canonically ordered list of
:class:`TrialPlan` entries, each carrying its own seed.  That explicit
list is what makes the rest of the subsystem simple:

* **Determinism** — seeds are a pure function of the spec
  (``base_seed + start_index``, the same "apples to apples" stream
  :func:`repro.evaluation.runner.run_trials` uses), so any execution
  order (serial, 4 workers, resumed after a crash) produces the same
  per-trial results.
* **Resumability** — the journal records trial *indices*; resuming is
  a set difference against the plan, never a guess.
* **Integrity** — :func:`spec_fingerprint` hashes the logical content
  of the spec (heuristic names, instance shapes, seed stream) so a
  resume against a store created from a *different* spec is rejected.

The canonical order matches the serial runner exactly: instances in
declaration order, heuristics in declaration order, starts ascending.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.evaluation.campaign import CampaignSpec


@dataclass(frozen=True)
class TrialPlan:
    """One scheduled trial: position in the canonical order plus seed.

    ``start`` is the trial's start index *within its (heuristic,
    instance) multistart block* — redundant with the seed
    (``seed == base_seed + start``) but carried explicitly so executors
    can key shared per-block state (the sticky hierarchy caches) on a
    value that is identical no matter which worker runs the trial.
    """

    index: int  #: position in the canonical expansion (journal key)
    heuristic: str
    instance: str
    seed: int
    start: int = 0  #: start index within the multistart block


def expand_spec(spec: "CampaignSpec") -> List[TrialPlan]:
    """Expand a spec into its canonical trial list.

    Start ``i`` of every heuristic on a given instance uses seed
    ``spec.base_seed + i`` so all heuristics face identical randomness.
    """
    plan: List[TrialPlan] = []
    index = 0
    for instance_name in spec.instances:
        for partitioner in spec.heuristics:
            name = getattr(partitioner, "name", type(partitioner).__name__)
            for i in range(spec.num_starts):
                plan.append(
                    TrialPlan(
                        index=index,
                        heuristic=name,
                        instance=instance_name,
                        seed=spec.base_seed + i,
                        start=i,
                    )
                )
                index += 1
    return plan


def spec_fingerprint(spec: "CampaignSpec") -> str:
    """Stable hash of the spec's logical content.

    Covers everything that determines the trial stream: campaign name,
    heuristic names (in order), instance names and shapes (vertex, net
    and pin counts), start count and the seed stream origin.  It does
    *not* hash heuristic internals — two runs with the same fingerprint
    are only comparable if the code is the same, which is what the
    run-store's recorded package version is for.
    """
    instances: Dict[str, List[int]] = {
        name: [hg.num_vertices, hg.num_nets, hg.num_pins]
        for name, hg in spec.instances.items()
    }
    payload = {
        "name": spec.name,
        "heuristics": [
            getattr(h, "name", type(h).__name__) for h in spec.heuristics
        ],
        "instances": instances,
        "num_starts": spec.num_starts,
        "base_seed": spec.base_seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]
