"""Baseline partitioners: classical comparators and the deliberately
weak "Reported" FM reconstruction used by Tables 2-3."""

from repro.baselines.annealing import AnnealingPartitioner
from repro.baselines.kl import KLPartitioner
from repro.baselines.random_part import BFSGrowthPartitioner, RandomPartitioner
from repro.baselines.spectral import SpectralPartitioner
from repro.baselines.weak_fm import WeakFM, weak_config

__all__ = [
    "AnnealingPartitioner",
    "BFSGrowthPartitioner",
    "KLPartitioner",
    "RandomPartitioner",
    "SpectralPartitioner",
    "WeakFM",
    "weak_config",
]
