"""Simulated-annealing bipartitioner.

The paper's use model mentions "stochastic hill-climbing search" as the
detailed-placement refiner, and SA is the classic metaheuristic whose
quality/runtime profile differs enough from FM to make BSF-curve and
ranking-diagram comparisons interesting: SA is far slower per start but
keeps improving with budget, so the speed-dependent ranking flips — the
exact phenomenon Section 3.2's reporting style exists to expose.

The implementation is a standard Metropolis scheme over single-vertex
moves with the incremental gain evaluation shared with FM
(:meth:`Partition2.gain`), a geometric cooling schedule, and rejection
of balance-violating moves.
"""

from __future__ import annotations

import math
import random
import time
from typing import Optional, Sequence

from repro.core.balance import BalanceConstraint
from repro.core.partition import Partition2
from repro.core.partitioner import PartitionResult
from repro.hypergraph.hypergraph import Hypergraph


class AnnealingPartitioner:
    """Metropolis simulated annealing over single-vertex moves.

    Parameters
    ----------
    moves_per_temperature:
        Proposed moves per temperature step, as a multiple of the vertex
        count.
    initial_acceptance:
        Target acceptance ratio used to auto-tune the starting
        temperature from sampled uphill moves.
    cooling:
        Geometric cooling factor per temperature step.
    min_temperature_factor:
        Stop when the temperature falls below this fraction of the
        starting temperature.
    """

    def __init__(
        self,
        tolerance: float = 0.02,
        moves_per_temperature: float = 4.0,
        initial_acceptance: float = 0.8,
        cooling: float = 0.9,
        min_temperature_factor: float = 1e-3,
        name: Optional[str] = None,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if not 0 < initial_acceptance < 1:
            raise ValueError("initial_acceptance must be in (0, 1)")
        self.tolerance = tolerance
        self.moves_per_temperature = moves_per_temperature
        self.initial_acceptance = initial_acceptance
        self.cooling = cooling
        self.min_temperature_factor = min_temperature_factor
        self.name = name if name is not None else "Simulated annealing"

    # ------------------------------------------------------------------
    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        """One SA run from a random balanced start."""
        t0 = time.perf_counter()
        rng = random.Random(seed)
        balance = BalanceConstraint(
            hypergraph.total_vertex_weight, self.tolerance
        )
        part = Partition2.random_balanced(hypergraph, balance, rng, fixed_parts)
        movable = [
            v for v in range(hypergraph.num_vertices) if not part.fixed[v]
        ]
        if not movable:
            return self._result(part, balance, t0)

        temperature = self._initial_temperature(part, movable, rng)
        floor = temperature * self.min_temperature_factor
        moves_per_step = max(16, int(self.moves_per_temperature * len(movable)))
        hi = balance.upper_bound

        best_cut = part.cut
        best_assignment = list(part.assignment)
        while temperature > floor:
            accepted = 0
            for _ in range(moves_per_step):
                v = movable[rng.randrange(len(movable))]
                dest = 1 - part.assignment[v]
                if (
                    part.part_weights[dest] + hypergraph.vertex_weight(v)
                    > hi
                ):
                    continue
                gain = part.gain(v)
                if gain >= 0 or rng.random() < math.exp(gain / temperature):
                    part.move(v)
                    accepted += 1
                    if part.cut < best_cut and balance.is_legal(
                        part.part_weights
                    ):
                        best_cut = part.cut
                        best_assignment = list(part.assignment)
            temperature *= self.cooling
            if accepted == 0:
                break  # frozen

        final = Partition2(hypergraph, best_assignment, part.fixed)
        return self._result(final, balance, t0)

    # ------------------------------------------------------------------
    def _initial_temperature(
        self, part: Partition2, movable, rng: random.Random
    ) -> float:
        """Temperature at which ``initial_acceptance`` of sampled uphill
        moves would be accepted (standard auto-tuning)."""
        uphill = []
        for _ in range(min(200, 4 * len(movable))):
            v = movable[rng.randrange(len(movable))]
            g = part.gain(v)
            if g < 0:
                uphill.append(-g)
        if not uphill:
            return 1.0
        avg_uphill = sum(uphill) / len(uphill)
        return -avg_uphill / math.log(self.initial_acceptance)

    @staticmethod
    def _result(
        part: Partition2, balance: BalanceConstraint, t0: float
    ) -> PartitionResult:
        return PartitionResult(
            assignment=part.assignment,
            cut=part.cut,
            part_weights=list(part.part_weights),
            legal=balance.is_legal(part.part_weights),
            runtime_seconds=time.perf_counter() - t0,
        )
