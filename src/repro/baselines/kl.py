"""Kernighan-Lin bipartitioning baseline.

KL [Kernighan-Lin 1970] is the ancestor of FM and the paper's reference
point for move-based heuristics.  It works on graphs, so hypergraphs are
clique-expanded first; it swaps *pairs* of vertices, so exact
cardinality balance is maintained rather than area balance.  Complexity
is O(passes * n^2 * d): suitable as a quality baseline on small and
medium instances, not as a production engine — which is itself one of
the paper's points about why FM displaced KL.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.core.partitioner import PartitionResult
from repro.hypergraph.conversion import clique_expansion
from repro.hypergraph.hypergraph import Hypergraph


class KLPartitioner:
    """Kernighan-Lin pair-swap bipartitioner on the clique expansion.

    Parameters
    ----------
    max_passes:
        KL improvement passes (each O(n^2 d)).
    tolerance:
        Accepted for protocol compatibility; KL maintains cardinality
        (not area) balance, as the original algorithm does.
    """

    def __init__(self, max_passes: int = 8, tolerance: float = 0.02) -> None:
        self.max_passes = max_passes
        self.tolerance = tolerance
        self.name = "KL (clique expansion)"

    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        """One KL start from a random half/half split."""
        if fixed_parts is not None and any(p is not None for p in fixed_parts):
            raise NotImplementedError("KL baseline does not support fixed vertices")
        start_time = time.perf_counter()
        rng = random.Random(seed)
        n = hypergraph.num_vertices

        adjacency: List[Dict[int, float]] = [dict() for _ in range(n)]
        for (u, v), w in clique_expansion(hypergraph).items():
            adjacency[u][v] = adjacency[u].get(v, 0.0) + w
            adjacency[v][u] = adjacency[v].get(u, 0.0) + w

        order = list(range(n))
        rng.shuffle(order)
        side = [0] * n
        for i, v in enumerate(order):
            side[v] = 0 if i < (n + 1) // 2 else 1

        for _ in range(self.max_passes):
            if self._kl_pass(adjacency, side) <= 0:
                break

        assignment = list(side)
        cut = hypergraph.cut_size(assignment)
        weights = hypergraph.part_weights(assignment)
        return PartitionResult(
            assignment=assignment,
            cut=cut,
            part_weights=weights,
            legal=abs(assignment.count(0) - assignment.count(1)) <= 1,
            runtime_seconds=time.perf_counter() - start_time,
        )

    @staticmethod
    def _kl_pass(adjacency: List[Dict[int, float]], side: List[int]) -> float:
        """One KL pass: greedy pair swaps, keep the best prefix.

        Returns the (graph-model) gain realized by the pass.
        """
        n = len(adjacency)
        # D[v] = external - internal connection cost.
        d_val = [0.0] * n
        for v in range(n):
            for u, w in adjacency[v].items():
                if side[u] == side[v]:
                    d_val[v] -= w
                else:
                    d_val[v] += w
        locked = [False] * n
        swaps: List[tuple] = []
        gains: List[float] = []
        part0 = [v for v in range(n) if side[v] == 0]
        part1 = [v for v in range(n) if side[v] == 1]
        for _ in range(min(len(part0), len(part1))):
            best = None
            best_gain = -float("inf")
            for a in part0:
                if locked[a]:
                    continue
                da = d_val[a]
                adj_a = adjacency[a]
                for b in part1:
                    if locked[b]:
                        continue
                    gain = da + d_val[b] - 2.0 * adj_a.get(b, 0.0)
                    if gain > best_gain:
                        best_gain = gain
                        best = (a, b)
            if best is None:
                break
            a, b = best
            locked[a] = True
            locked[b] = True
            swaps.append((a, b))
            gains.append(best_gain)
            # Update D values of free vertices as if a and b swapped.
            for v in range(n):
                if locked[v]:
                    continue
                w_a = adjacency[v].get(a, 0.0)
                w_b = adjacency[v].get(b, 0.0)
                if side[v] == side[a]:
                    d_val[v] += 2.0 * w_a - 2.0 * w_b
                else:
                    d_val[v] += 2.0 * w_b - 2.0 * w_a

        # Best prefix of cumulative gains.
        best_k, best_total, running = 0, 0.0, 0.0
        for k, g in enumerate(gains, start=1):
            running += g
            if running > best_total:
                best_total = running
                best_k = k
        for a, b in swaps[:best_k]:
            side[a], side[b] = side[b], side[a]
        return best_total
