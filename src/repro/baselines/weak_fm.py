"""The "Reported" weak-implementation stand-in (Tables 2 and 3).

The paper contrasts its own ("Our") LIFO FM and CLIP FM against the much
weaker numbers *reported* for the same pseudocode in [Alpert, ISPD98] —
the point being that silent implementation choices swamp algorithmic
innovation.  Since that external implementation is not available, this
module reconstructs a deliberately weak — but *faithful-to-pseudocode* —
FM the way a hurried implementer would plausibly write it:

* FIFO gain-bucket insertion (constant-time, looks equivalent, measurably
  worse — Hagen/Huang/Kahng);
* "All delta-gain" updates (the straightforward four-cut-values loop with
  immediate reinsertion, zero deltas included);
* ``part0`` tie-breaking (whatever falls out of a ``for p in range(2)``
  loop);
* first-minimum best-solution choice;
* no corking guard — wide cells enter the gain structure (fatal for CLIP
  on actual-area instances, Section 2.3);
* a single FM pass per start (early FM papers and many re-implementations
  run one pass; pass iteration is another silent decision).

Everything else (gain maths, balance handling, rollback) is correct —
the gap against the strong implementation measured in Tables 2-3 comes
entirely from these choices.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import BestChoice, FMConfig, TieBias, UpdatePolicy
from repro.core.gain_bucket import IllegalHeadPolicy, InsertionOrder
from repro.core.partitioner import FMPartitioner


def weak_config(clip: bool = False, single_pass: bool = True) -> FMConfig:
    """The weak implicit-decision combination described above."""
    return FMConfig(
        clip=clip,
        update_policy=UpdatePolicy.ALL,
        tie_bias=TieBias.PART0,
        insertion_order=InsertionOrder.FIFO,
        best_choice=BestChoice.FIRST,
        illegal_head=IllegalHeadPolicy.SKIP_PARTITION,
        guard_oversized=False,
        max_passes=1 if single_pass else 100,
    )


class WeakFM(FMPartitioner):
    """A weak-but-correct FM/CLIP implementation ("Reported" stand-in).

    Drop-in replacement for :class:`FMPartitioner`; see module docstring
    for exactly which implicit decisions are weakened.
    """

    def __init__(
        self,
        clip: bool = False,
        tolerance: float = 0.02,
        single_pass: bool = True,
        config: Optional[FMConfig] = None,
    ) -> None:
        super().__init__(
            config=config if config is not None else weak_config(clip, single_pass),
            tolerance=tolerance,
            name=f"Reported {'CLIP' if clip else 'LIFO'} (weak impl)",
        )
        self._clip = clip
