"""Spectral bisection baseline (Fiedler vector + balanced sweep cut).

Spectral methods (Wei-Cheng ratio cut, Chan-Schlag-Zien scaled cost, both
cited by the paper) order vertices by the second-smallest Laplacian
eigenvector of the clique-expanded graph and choose a split point along
that ordering.  Here the split point is swept to the best *legal* cut
under the paper's area-balance convention, giving a deterministic,
non-move-based comparator for the evaluation exhibits.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.core.balance import BalanceConstraint
from repro.core.partitioner import PartitionResult
from repro.hypergraph.conversion import clique_expansion
from repro.hypergraph.hypergraph import Hypergraph


class SpectralPartitioner:
    """Fiedler-vector bisection with a balance-legal sweep cut.

    Deterministic (the ``seed`` argument only perturbs the eigensolver
    start vector, giving multistart variety without changing quality
    materially).
    """

    def __init__(self, tolerance: float = 0.02) -> None:
        self.tolerance = tolerance
        self.name = "Spectral (Fiedler sweep)"

    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        """Compute the Fiedler ordering and the best legal sweep split."""
        if fixed_parts is not None and any(p is not None for p in fixed_parts):
            raise NotImplementedError(
                "spectral baseline does not support fixed vertices"
            )
        start_time = time.perf_counter()
        n = hypergraph.num_vertices
        order = self._fiedler_order(hypergraph, seed)
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)

        # Sweep: prefix of the ordering goes to part 0.  Track the cut
        # incrementally with per-net pin counts.
        pins0 = [0] * hypergraph.num_nets
        sizes = [hypergraph.net_size(e) for e in hypergraph.nets()]
        cut = 0.0
        weight0 = 0.0
        best_cut = float("inf")
        best_k = -1
        position = [0] * n
        for k, v in enumerate(order):
            position[v] = 1
            weight0 += hypergraph.vertex_weight(v)
            for e in hypergraph.nets_of(v):
                before = pins0[e]
                pins0[e] = before + 1
                if sizes[e] >= 2:
                    if before == 0:
                        cut += hypergraph.net_weight(e)
                    if pins0[e] == sizes[e]:
                        cut -= hypergraph.net_weight(e)
            if balance.lower_bound <= weight0 <= balance.upper_bound:
                if cut < best_cut:
                    best_cut = cut
                    best_k = k
        if best_k < 0:
            # No legal sweep point (pathological areas): fall back to the
            # closest-to-balanced point.
            best_k = n // 2 - 1

        assignment = [1] * n
        for v in order[: best_k + 1]:
            assignment[v] = 0
        cut_final = hypergraph.cut_size(assignment)
        weights = hypergraph.part_weights(assignment)
        return PartitionResult(
            assignment=assignment,
            cut=cut_final,
            part_weights=weights,
            legal=balance.is_legal(weights),
            runtime_seconds=time.perf_counter() - start_time,
        )

    @staticmethod
    def _fiedler_order(hypergraph: Hypergraph, seed: int) -> List[int]:
        """Vertex ordering by the Fiedler vector of the clique expansion."""
        n = hypergraph.num_vertices
        edges = clique_expansion(hypergraph)
        if not edges:
            return list(range(n))
        rows, cols, vals = [], [], []
        for (u, v), w in edges.items():
            rows += [u, v]
            cols += [v, u]
            vals += [-w, -w]
        adj = scipy.sparse.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        degree = -np.asarray(adj.sum(axis=1)).ravel()
        laplacian = adj + scipy.sparse.diags(degree)
        rng = np.random.default_rng(seed)
        v0 = rng.standard_normal(n)
        try:
            _, vectors = scipy.sparse.linalg.eigsh(
                laplacian, k=2, sigma=-1e-3, which="LM", v0=v0
            )
            fiedler = vectors[:, 1]
        except Exception:
            # Shift-invert can fail on tiny/degenerate instances; dense
            # fallback is fine there.
            dense = laplacian.toarray()
            _, vecs = np.linalg.eigh(dense)
            fiedler = vecs[:, 1] if n > 1 else np.zeros(n)
        return sorted(range(n), key=lambda v: (fiedler[v], v))
