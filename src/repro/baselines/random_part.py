"""Trivial baselines: random legal assignment and greedy BFS growth.

These anchor the bottom of every comparison ("Do measure with many
instruments"): a heuristic that cannot clearly beat a random legal
solution, or plain BFS region growth, is not contributing.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

from repro.core.balance import BalanceConstraint
from repro.core.config import InitialSolution
from repro.core.initial import generate_initial
from repro.core.partition import Partition2
from repro.core.partitioner import PartitionResult
from repro.hypergraph.hypergraph import Hypergraph


class RandomPartitioner:
    """Random balanced assignment; no optimization at all."""

    def __init__(self, tolerance: float = 0.02) -> None:
        self.tolerance = tolerance
        self.name = "Random (legal)"

    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        start_time = time.perf_counter()
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)
        part = Partition2.random_balanced(
            hypergraph, balance, random.Random(seed), fixed_parts
        )
        return _result(part, balance, start_time)


class BFSGrowthPartitioner:
    """Breadth-first region growth from a random seed; no refinement."""

    def __init__(self, tolerance: float = 0.02) -> None:
        self.tolerance = tolerance
        self.name = "BFS growth"

    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        start_time = time.perf_counter()
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)
        part = generate_initial(
            hypergraph, balance, InitialSolution.BFS, random.Random(seed), fixed_parts
        )
        return _result(part, balance, start_time)


def _result(
    part: Partition2, balance: BalanceConstraint, start_time: float
) -> PartitionResult:
    return PartitionResult(
        assignment=part.assignment,
        cut=part.cut,
        part_weights=list(part.part_weights),
        legal=balance.is_legal(part.part_weights),
        runtime_seconds=time.perf_counter() - start_time,
    )
