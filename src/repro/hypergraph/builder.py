"""Incremental hypergraph construction.

Real netlists arrive as streams of named cells and nets with messy pin
lists (duplicate pins, dangling single-pin nets).  The builder cleans
these up and produces an immutable :class:`Hypergraph`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.hypergraph.hypergraph import Hypergraph


class HypergraphBuilder:
    """Builds a :class:`Hypergraph` incrementally.

    Vertices may be declared explicitly via :meth:`add_vertex` or
    implicitly by name through :meth:`add_net`.  Duplicate pins within a
    net are silently merged (a cell connected twice to the same net is a
    single pin for partitioning purposes).

    Parameters
    ----------
    drop_small_nets:
        When True (default), nets with fewer than two distinct pins are
        dropped at :meth:`build` time — they cannot contribute to any cut.
    """

    def __init__(self, drop_small_nets: bool = True) -> None:
        self._drop_small_nets = drop_small_nets
        self._vertex_ids: Dict[str, int] = {}
        self._vertex_weights: List[float] = []
        self._vertex_names: List[str] = []
        self._nets: List[List[int]] = []
        self._net_weights: List[float] = []
        self._net_names: List[str] = []

    @property
    def num_vertices(self) -> int:
        """Vertices added so far."""
        return len(self._vertex_names)

    @property
    def num_nets(self) -> int:
        """Nets added so far (before small-net dropping)."""
        return len(self._nets)

    def add_vertex(self, name: Optional[str] = None, weight: float = 1.0) -> int:
        """Add one vertex and return its id.

        Raises ``ValueError`` on duplicate names or negative weights.
        """
        if weight < 0:
            raise ValueError(f"negative vertex weight {weight}")
        vid = len(self._vertex_names)
        if name is None:
            name = f"v{vid}"
        if name in self._vertex_ids:
            raise ValueError(f"duplicate vertex name {name!r}")
        self._vertex_ids[name] = vid
        self._vertex_names.append(name)
        self._vertex_weights.append(float(weight))
        return vid

    def vertex_id(self, name: str) -> int:
        """Id of a previously added vertex, creating it if unknown."""
        vid = self._vertex_ids.get(name)
        if vid is None:
            vid = self.add_vertex(name)
        return vid

    def set_vertex_weight(self, v: int, weight: float) -> None:
        """Override the weight of vertex ``v`` (e.g. from an ``.are`` file)."""
        if weight < 0:
            raise ValueError(f"negative vertex weight {weight}")
        self._vertex_weights[v] = float(weight)

    def add_net(
        self,
        pins: Iterable[int],
        weight: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Add one net over vertex ids ``pins``; returns the net id.

        Duplicate pins are merged.  Pins must already exist.
        """
        if weight < 0:
            raise ValueError(f"negative net weight {weight}")
        unique: List[int] = []
        seen = set()
        for v in pins:
            if not 0 <= v < len(self._vertex_names):
                raise ValueError(f"pin {v} references unknown vertex")
            if v not in seen:
                seen.add(v)
                unique.append(v)
        eid = len(self._nets)
        self._nets.append(unique)
        self._net_weights.append(float(weight))
        self._net_names.append(name if name is not None else f"n{eid}")
        return eid

    def add_net_by_names(
        self,
        pin_names: Iterable[str],
        weight: float = 1.0,
        name: Optional[str] = None,
    ) -> int:
        """Add a net over vertex *names*, creating unknown vertices."""
        return self.add_net(
            (self.vertex_id(p) for p in pin_names), weight=weight, name=name
        )

    def build(self) -> Hypergraph:
        """Produce the immutable hypergraph.

        Pins and weights were validated (and pins de-duplicated) at add
        time, so the builder assembles flat CSR arrays and takes the
        trusted :meth:`Hypergraph.from_csr` path — no second validation
        pass over the whole netlist.
        """
        if self._drop_small_nets:
            kept = [
                (pins, w, nm)
                for pins, w, nm in zip(
                    self._nets, self._net_weights, self._net_names
                )
                if len(pins) >= 2
            ]
        else:
            kept = list(zip(self._nets, self._net_weights, self._net_names))
        net_ptr = [0] * (len(kept) + 1)
        flat_pins: List[int] = []
        for e, (pins, _, _) in enumerate(kept):
            flat_pins.extend(pins)
            net_ptr[e + 1] = len(flat_pins)
        return Hypergraph.from_csr(
            net_ptr,
            flat_pins,
            num_vertices=len(self._vertex_names),
            vertex_weights=list(self._vertex_weights),
            net_weights=[float(w) for _, w, _ in kept],
            vertex_names=list(self._vertex_names),
            net_names=[nm for _, _, nm in kept],
        )
