"""Zero-copy shared-memory transport for hypergraph instances.

A campaign orchestrator that ships every worker its own pickled copy of
every hypergraph pays an object-graph serialization per worker (and
again on every timeout-replacement respawn).  Mt-KaHyPar-style
shared-memory partitioners keep the instance data resident once and let
every thread read it; this module is the process-based equivalent: the
six flat CSR arrays of a :class:`~repro.hypergraph.hypergraph.Hypergraph`
are exported once into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment, and workers
attach by *name* — a handle pickles as a few hundred bytes no matter how
large the instance is.

Layout of a segment (all slots 8 bytes, so every array is naturally
aligned)::

    int64   net_ptr        [num_nets + 1]
    int64   net_pins       [num_pins]
    int64   vtx_ptr        [num_vertices + 1]
    int64   vtx_nets       [num_pins]
    float64 vertex_weights [num_vertices]
    float64 net_weights    [num_nets]

Both incidence directions are exported, so attaching never re-runs the
transpose counting sort.

Two attach modes (:func:`attach_hypergraph`):

* ``materialize=True`` (default) — the arrays are copied into plain
  Python lists via ``ndarray.tolist()`` (one C-speed pass per array) and
  the mapping is dropped immediately.  The FM inner loops index single
  elements millions of times, where list indexing beats scalar numpy
  access by ~1.5x; one bulk copy per (worker, instance) buys back every
  hot-loop access.
* ``materialize=False`` — true zero copy: read-only numpy views into the
  segment are adopted by the trusted
  :meth:`~repro.hypergraph.hypergraph.Hypergraph.from_csr` constructor
  (``validate=False``).  Bit-identical results, lowest memory, slower
  inner loops; the mapping must stay alive until :func:`detach_handle`.

Lifecycle.  Segment names are process-wide kernel objects, so leaks
outlive the interpreter.  Three guards keep them bounded:

* a process-local refcounted registry (create/attach increment, detach
  decrements, the mapping closes at zero) makes double-close a no-op;
* :class:`SharedInstanceSet` — the campaign-scoped registry — unlinks
  every segment it created on ``close()`` / context-manager exit and is
  ``atexit``-registered as a backstop (guarded by PID so a forked worker
  can never unlink the supervisor's segments);
* CPython's ``multiprocessing.resource_tracker`` (shared by all
  ``multiprocessing`` children) unlinks registered segments when the
  tracked process tree dies, so even ``kill -9`` of the supervisor
  cannot leak.

When :mod:`multiprocessing.shared_memory` is unavailable (exotic
platforms, ``/dev/shm``-less containers), every entry point degrades to
a *pickling fallback*: the handle simply carries the hypergraph itself,
and attach returns it unchanged.  Callers never need to branch.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph

try:  # pragma: no cover - import probe
    import numpy as _np
    from multiprocessing import shared_memory as _shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - exercised via _force_fallback
    _np = None
    _shared_memory = None
    HAVE_SHARED_MEMORY = False

#: Test hook: when True, every share falls back to pickling even though
#: shared_memory imported fine (exercises the degraded path everywhere).
_FORCE_FALLBACK = False


@dataclass(frozen=True)
class ShmHandle:
    """Picklable reference to a shared (or pickled-fallback) hypergraph.

    ``segment`` names the shared-memory block; sizes fix the array
    layout, so attaching needs no further metadata.  When ``segment`` is
    ``None`` the handle is a pickling fallback and ``fallback`` carries
    the hypergraph itself.
    """

    segment: Optional[str]
    num_vertices: int = 0
    num_nets: int = 0
    num_pins: int = 0
    vertex_names: Optional[Tuple[str, ...]] = None
    net_names: Optional[Tuple[str, ...]] = None
    fallback: Optional[Hypergraph] = None

    @property
    def is_shared(self) -> bool:
        return self.segment is not None

    def nbytes(self) -> int:
        """Total segment size implied by the layout (0 for fallback)."""
        if not self.is_shared:
            return 0
        slots = (
            (self.num_nets + 1)
            + self.num_pins
            + (self.num_vertices + 1)
            + self.num_pins
            + self.num_vertices
            + self.num_nets
        )
        return 8 * slots


class _Mapping:
    """Process-local refcounted view of one attached segment."""

    __slots__ = ("shm", "refs", "unlinked")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.refs = 1
        #: Creator reference already dropped by :func:`unlink_handle`
        #: (makes double unlink a no-op on the refcount).
        self.unlinked = False


#: name -> mapping for every segment this process currently has open.
_MAPPINGS: Dict[str, _Mapping] = {}

#: Serializes every registry mutation (attach/detach/unlink/share).
#: Multiple campaigns detaching the same cached segment concurrently —
#: the service plane's steady state — must resolve to exactly one close
#: and at most one unlink, never a double-free; the lock makes the
#: refcount transitions atomic and keeps double-detach/double-unlink
#: no-ops under any thread interleaving.
_REGISTRY_LOCK = threading.RLock()

#: Mappings whose close was blocked by live zero-copy views (numpy
#: arrays exporting pointers into the mmap).  Held here so their
#: deferred close is retried after the views die; drained at exit.
_ZOMBIES: List[object] = []


def _close_quietly(shm) -> bool:
    """Close a mapping; defer (and remember) if views still pin it.

    A ``materialize=False`` hypergraph keeps numpy views into the
    segment, and ``mmap`` refuses to close while exported pointers
    exist.  Deferring is safe: the kernel frees the memory once the
    last mapping dies (at process exit at the latest), and the *name*
    is controlled by ``unlink`` which never needs the mapping closed.
    """
    try:
        shm.close()
        return True
    except BufferError:
        with _REGISTRY_LOCK:
            _ZOMBIES.append(shm)
        return False


def _drain_zombies() -> None:
    import gc

    if not _ZOMBIES:
        return
    gc.collect()
    with _REGISTRY_LOCK:
        pending = list(_ZOMBIES)
        for shm in pending:
            try:
                shm.close()
                _ZOMBIES.remove(shm)
            except BufferError:
                pass


atexit.register(_drain_zombies)


def _arrays(handle: ShmHandle, buf):
    """The six typed views into ``buf`` under ``handle``'s layout."""
    nv, nn, np_ = handle.num_vertices, handle.num_nets, handle.num_pins
    offset = 0
    out = []
    for count, dtype in (
        (nn + 1, _np.int64),
        (np_, _np.int64),
        (nv + 1, _np.int64),
        (np_, _np.int64),
        (nv, _np.float64),
        (nn, _np.float64),
    ):
        arr = _np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        offset += 8 * count
        out.append(arr)
    return out


def shm_available() -> bool:
    """True when real shared-memory transport will be used."""
    return HAVE_SHARED_MEMORY and not _FORCE_FALLBACK


def share_hypergraph(hg: Hypergraph) -> ShmHandle:
    """Export ``hg``'s CSR arrays into a fresh shared-memory segment.

    The creating process keeps one registry reference to the segment
    (so views into it stay valid) but does **not** schedule an unlink:
    pair every share with :func:`unlink_handle`, or use
    :class:`SharedInstanceSet` which does it for you.  Falls back to a
    pickling handle when shared memory is unavailable or creation fails
    (e.g. ``/dev/shm`` full).
    """
    if not shm_available():
        return _fallback_handle(hg)
    net_ptr, net_pins, vtx_ptr, vtx_nets = hg.raw_csr
    handle = ShmHandle(
        segment="pending",
        num_vertices=hg.num_vertices,
        num_nets=hg.num_nets,
        num_pins=hg.num_pins,
        vertex_names=_names_tuple(hg, vertices=True),
        net_names=_names_tuple(hg, vertices=False),
    )
    try:
        shm = _shared_memory.SharedMemory(
            create=True, size=max(handle.nbytes(), 1)
        )
    except OSError:
        return _fallback_handle(hg)
    handle = ShmHandle(
        segment=shm.name,
        num_vertices=handle.num_vertices,
        num_nets=handle.num_nets,
        num_pins=handle.num_pins,
        vertex_names=handle.vertex_names,
        net_names=handle.net_names,
    )
    a_net_ptr, a_net_pins, a_vtx_ptr, a_vtx_nets, a_vw, a_nw = _arrays(
        handle, shm.buf
    )
    a_net_ptr[:] = net_ptr
    a_net_pins[:] = net_pins
    a_vtx_ptr[:] = vtx_ptr
    a_vtx_nets[:] = vtx_nets
    a_vw[:] = hg.vertex_weights
    a_nw[:] = hg.net_weights
    with _REGISTRY_LOCK:
        _MAPPINGS[shm.name] = _Mapping(shm)
    return handle


def attach_hypergraph(
    handle: ShmHandle, materialize: bool = True
) -> Hypergraph:
    """Reconstruct a hypergraph from a handle.

    Fallback handles return their embedded hypergraph.  Shared handles
    attach the segment (reusing any mapping this process already holds)
    and adopt the arrays through the trusted ``from_csr`` constructor —
    validation was done when the original hypergraph was built.

    With ``materialize=True`` the mapping is released before returning;
    with ``materialize=False`` the returned hypergraph reads the
    segment in place (read-only views) and the caller owes one
    :func:`detach_handle` when done with it.
    """
    if not handle.is_shared:
        if handle.fallback is None:
            raise ValueError("fallback handle carries no hypergraph")
        return handle.fallback
    if not HAVE_SHARED_MEMORY:
        raise RuntimeError(
            f"handle references shared segment {handle.segment!r} but "
            "multiprocessing.shared_memory is unavailable in this process"
        )
    mapping = _attach_mapping(handle.segment)
    try:
        arrays = _arrays(handle, mapping.shm.buf)
        if materialize:
            (net_ptr, net_pins, vtx_ptr, vtx_nets, vw, nw) = (
                a.tolist() for a in arrays
            )
        else:
            for a in arrays:
                a.flags.writeable = False
            net_ptr, net_pins, vtx_ptr, vtx_nets, vw, nw = arrays
        return Hypergraph.from_csr(
            net_ptr,
            net_pins,
            handle.num_vertices,
            vw,
            nw,
            vertex_names=(
                list(handle.vertex_names) if handle.vertex_names else None
            ),
            net_names=list(handle.net_names) if handle.net_names else None,
            transpose=(vtx_ptr, vtx_nets),
        )
    finally:
        if materialize:
            detach_handle(handle)


def detach_handle(handle: ShmHandle) -> None:
    """Drop one reference to ``handle``'s segment mapping.

    The mapping closes when the last reference goes; extra detaches
    (double close) are no-ops.  Never unlinks.
    """
    if not handle.is_shared:
        return
    with _REGISTRY_LOCK:
        mapping = _MAPPINGS.get(handle.segment)
        if mapping is None:
            return
        mapping.refs -= 1
        if mapping.refs > 0:
            return
        del _MAPPINGS[handle.segment]
        shm = mapping.shm
    _close_quietly(shm)


def unlink_handle(handle: ShmHandle) -> None:
    """Destroy ``handle``'s segment (idempotent; fallback = no-op).

    Drops the creator's reference, then asks the kernel to remove the
    name.  Exactly one process — the creator — should unlink;
    :class:`SharedInstanceSet` enforces that.  The mapping itself is
    closed only when no concurrent attacher still references it —
    closing under a live reader would release the buffer out from under
    its views — so under churn the last :func:`detach_handle` performs
    the close, and late attachers observe the normal
    ``FileNotFoundError`` once the name is gone.
    """
    if not handle.is_shared or not HAVE_SHARED_MEMORY:
        return
    close_now = None
    with _REGISTRY_LOCK:
        mapping = _MAPPINGS.get(handle.segment)
        if mapping is not None:
            shm = mapping.shm
            if not mapping.unlinked:
                mapping.unlinked = True
                mapping.refs -= 1
                if mapping.refs <= 0:
                    del _MAPPINGS[handle.segment]
                    close_now = shm
    try:
        if mapping is None:
            shm = _shared_memory.SharedMemory(name=handle.segment)
            close_now = shm
        shm.unlink()
    except FileNotFoundError:
        pass  # already unlinked (e.g. by the resource tracker)
    if close_now is not None:
        _close_quietly(close_now)


def _attach_mapping(name: str) -> _Mapping:
    with _REGISTRY_LOCK:
        mapping = _MAPPINGS.get(name)
        if mapping is not None:
            mapping.refs += 1
            return mapping
        shm = _shared_memory.SharedMemory(name=name)
        mapping = _Mapping(shm)
        _MAPPINGS[name] = mapping
        return mapping


def _fallback_handle(hg: Hypergraph) -> ShmHandle:
    return ShmHandle(segment=None, fallback=hg)


def _names_tuple(hg: Hypergraph, vertices: bool) -> Optional[Tuple[str, ...]]:
    names = hg._vertex_names if vertices else hg._net_names
    return tuple(names) if names else None


# ----------------------------------------------------------------------
class SharedInstanceSet:
    """Campaign-scoped registry of shared instances.

    Shares every hypergraph in ``instances`` on construction (degrading
    per instance to pickling fallbacks when shared memory is missing or
    refuses the allocation) and exposes the resulting picklable
    ``handles``.  ``close()`` — or context-manager exit, or the
    ``atexit`` backstop — unlinks every segment this set created,
    exactly once.  A forked child inheriting this object cannot unlink:
    ``close()`` is PID-guarded to the creating process.
    """

    def __init__(
        self,
        instances: Dict[str, Hypergraph],
        use_shared_memory: bool = True,
    ) -> None:
        self.handles = {}
        self._pid = os.getpid()
        self._closed = False
        for name, hg in instances.items():
            if use_shared_memory:
                self.handles[name] = share_hypergraph(hg)
            else:
                self.handles[name] = _fallback_handle(hg)
        atexit.register(self.close)

    @property
    def num_shared(self) -> int:
        """Instances actually in shared memory (rest are fallbacks)."""
        return sum(1 for h in self.handles.values() if h.is_shared)

    def segment_names(self) -> List[str]:
        return [h.segment for h in self.handles.values() if h.is_shared]

    def close(self) -> None:
        """Unlink every created segment (idempotent, creator-PID only)."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        for handle in self.handles.values():
            unlink_handle(handle)
        atexit.unregister(self.close)

    def __enter__(self) -> "SharedInstanceSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
