"""Structural validation of hypergraphs.

The paper stresses that weak testbeds produce wrong conclusions; a first
line of defence is validating every instance before experiments run.
"""

from __future__ import annotations

from typing import List

from repro.hypergraph.hypergraph import Hypergraph


class HypergraphValidationError(ValueError):
    """Raised when a hypergraph fails structural validation."""


def validate_hypergraph(
    hypergraph: Hypergraph,
    allow_isolated_vertices: bool = True,
    allow_small_nets: bool = True,
) -> List[str]:
    """Check internal consistency; return a list of warnings.

    Hard inconsistencies (CSR corruption, dangling pins, negative
    weights) raise :class:`HypergraphValidationError`.  Soft issues —
    isolated vertices or sub-2-pin nets when the respective ``allow_*``
    flag is True — are returned as human-readable warnings.
    """
    warnings: List[str] = []
    net_ptr, net_pins, vtx_ptr, vtx_nets = hypergraph.raw_csr

    if len(net_ptr) != hypergraph.num_nets + 1:
        raise HypergraphValidationError("net_ptr length mismatch")
    if len(vtx_ptr) != hypergraph.num_vertices + 1:
        raise HypergraphValidationError("vtx_ptr length mismatch")
    if net_ptr[0] != 0 or net_ptr[-1] != len(net_pins):
        raise HypergraphValidationError("net_ptr endpoints corrupt")
    if vtx_ptr[0] != 0 or vtx_ptr[-1] != len(vtx_nets):
        raise HypergraphValidationError("vtx_ptr endpoints corrupt")
    if len(net_pins) != len(vtx_nets):
        raise HypergraphValidationError("pin count differs between directions")

    for e in range(hypergraph.num_nets):
        if net_ptr[e] > net_ptr[e + 1]:
            raise HypergraphValidationError(f"net_ptr not monotone at {e}")
        pins = hypergraph.pins_of(e)
        if len(set(pins)) != len(pins):
            raise HypergraphValidationError(f"net {e} has duplicate pins")
        for v in pins:
            if not 0 <= v < hypergraph.num_vertices:
                raise HypergraphValidationError(f"net {e} pin {v} out of range")
        if len(pins) < 2:
            if not allow_small_nets:
                raise HypergraphValidationError(f"net {e} has {len(pins)} pins")
            warnings.append(f"net {e} has only {len(pins)} pin(s)")

    # Cross-check the transposed incidence.
    for v in range(hypergraph.num_vertices):
        for e in hypergraph.nets_of(v):
            if v not in hypergraph.pins_of(e):
                raise HypergraphValidationError(
                    f"vertex {v} lists net {e} but net lacks the pin"
                )
        if hypergraph.degree(v) == 0:
            if not allow_isolated_vertices:
                raise HypergraphValidationError(f"vertex {v} is isolated")
            warnings.append(f"vertex {v} is isolated")

    for v in range(hypergraph.num_vertices):
        if hypergraph.vertex_weight(v) < 0:
            raise HypergraphValidationError(f"vertex {v} negative weight")
    for e in range(hypergraph.num_nets):
        if hypergraph.net_weight(e) < 0:
            raise HypergraphValidationError(f"net {e} negative weight")

    return warnings
