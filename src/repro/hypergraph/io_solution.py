"""Partition solution files (hMetis convention).

A solution file holds one part id per line, one line per vertex in id
order — the format hMetis writes as ``<netlist>.part.<k>``.  A trailing
comment block (lines starting with ``%``) may record metadata such as
the cut; it is ignored on read.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


def write_solution(
    assignment: List[int],
    path: PathLike,
    hypergraph: Optional[Hypergraph] = None,
    k: Optional[int] = None,
) -> None:
    """Write ``assignment`` as a solution file.

    When ``hypergraph`` is given, the cut and part weights are appended
    as ``%`` comments for human inspection.
    """
    lines = [str(p) for p in assignment]
    if hypergraph is not None:
        if len(assignment) != hypergraph.num_vertices:
            raise ValueError("assignment length mismatch")
        parts = k if k is not None else (max(assignment) + 1 if assignment else 0)
        lines.append(f"% cut {hypergraph.cut_size(assignment):g}")
        if parts >= 2:
            weights = hypergraph.part_weights(assignment, parts)
            lines.append(
                "% part_weights " + " ".join(f"{w:g}" for w in weights)
            )
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_solution(
    path: PathLike, hypergraph: Optional[Hypergraph] = None
) -> List[int]:
    """Read a solution file; validates length/parts against ``hypergraph``
    when given."""
    assignment: List[int] = []
    for ln in Path(path).read_text(encoding="ascii").splitlines():
        ln = ln.strip()
        if not ln or ln.startswith("%"):
            continue
        assignment.append(int(ln))
    if hypergraph is not None and len(assignment) != hypergraph.num_vertices:
        raise ValueError(
            f"solution has {len(assignment)} entries for a hypergraph "
            f"with {hypergraph.num_vertices} vertices"
        )
    if any(p < 0 for p in assignment):
        raise ValueError("negative part id in solution")
    return assignment
