"""Conversions between hypergraphs and ordinary graphs.

Move-based partitioners work on the hypergraph directly, but several
baselines (Kernighan-Lin, spectral bisection) need a graph.  Two standard
models are provided:

* **Clique expansion** — each net of size ``s`` becomes a clique with
  edge weight ``w / (s - 1)`` (the "standard" net model; exact for
  2-pin nets, an approximation for larger nets).
* **Star expansion** — each net becomes a zero-weight auxiliary vertex
  connected to its pins; preserves hypergraph cuts exactly in a
  vertex-separator sense.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph


def clique_expansion(hypergraph: Hypergraph) -> Dict[Tuple[int, int], float]:
    """Weighted edge dict ``{(u, v): w}`` of the clique expansion.

    Edges are keyed with ``u < v``; parallel contributions from multiple
    nets accumulate.  Nets below two pins contribute nothing.
    """
    edges: Dict[Tuple[int, int], float] = {}
    for e in range(hypergraph.num_nets):
        pins = hypergraph.pins_of(e)
        s = len(pins)
        if s < 2:
            continue
        w = hypergraph.net_weight(e) / (s - 1)
        for i in range(s):
            for j in range(i + 1, s):
                u, v = pins[i], pins[j]
                key = (u, v) if u < v else (v, u)
                edges[key] = edges.get(key, 0.0) + w
    return edges


def star_expansion(hypergraph: Hypergraph) -> nx.Graph:
    """Bipartite star expansion as a NetworkX graph.

    Cell vertices keep their integer ids; net vertices are the strings
    ``"net<e>"``.  Cell nodes carry ``weight`` (area) attributes; edges
    carry the net weight.
    """
    graph = nx.Graph()
    for v in range(hypergraph.num_vertices):
        graph.add_node(v, weight=hypergraph.vertex_weight(v), kind="cell")
    for e in range(hypergraph.num_nets):
        net_node = f"net{e}"
        graph.add_node(net_node, weight=0.0, kind="net")
        for v in hypergraph.pins_of(e):
            graph.add_edge(net_node, v, weight=hypergraph.net_weight(e))
    return graph


def to_networkx(hypergraph: Hypergraph) -> nx.Graph:
    """Clique expansion as a NetworkX graph with area/weight attributes."""
    graph = nx.Graph()
    for v in range(hypergraph.num_vertices):
        graph.add_node(v, weight=hypergraph.vertex_weight(v))
    for (u, v), w in clique_expansion(hypergraph).items():
        graph.add_edge(u, v, weight=w)
    return graph
