"""hMetis ``.fix`` fixed-vertex files.

hMetis accepts a "fix file" with one entry per vertex: the part the
vertex is pre-assigned to, or ``-1`` for free vertices.  Since the paper
emphasizes that realistic (placement-driven) instances have many fixed
vertices, first-class support for this format matters for apples-to-
apples experiments.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


def write_fix(
    fixed_parts: List[Optional[int]], path: PathLike
) -> None:
    """Write ``fixed_parts`` (``None`` = free) in hMetis fix format."""
    lines = [str(p) if p is not None else "-1" for p in fixed_parts]
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_fix(
    path: PathLike, hypergraph: Optional[Hypergraph] = None
) -> List[Optional[int]]:
    """Read a fix file; ``-1`` becomes ``None`` (free vertex)."""
    out: List[Optional[int]] = []
    for ln in Path(path).read_text(encoding="ascii").splitlines():
        ln = ln.strip()
        if not ln or ln.startswith("%"):
            continue
        value = int(ln)
        if value < -1:
            raise ValueError(f"invalid fix entry {value}")
        out.append(None if value == -1 else value)
    if hypergraph is not None and len(out) != hypergraph.num_vertices:
        raise ValueError(
            f"fix file has {len(out)} entries for a hypergraph with "
            f"{hypergraph.num_vertices} vertices"
        )
    return out
