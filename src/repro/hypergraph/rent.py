"""Rent's rule analysis of netlist instances.

Rent's rule — ``T = t * B^p`` relating the number of external
connections ``T`` of a block of ``B`` cells — is the standard structural
model of real netlists, and the basis of this library's synthetic
generator.  This module *measures* the Rent exponent of any hypergraph
by recursive bisection sampling (the classical partitioning-based Rent
analysis): partition recursively, record (block size, external nets)
pairs at every tree node, and fit ``log T`` against ``log B``.

Measuring ``p`` on generated instances closes the loop on DESIGN.md's
substitution argument: the generator's *target* exponent can be checked
against the *measured* exponent of the instances experiments actually
use, and real netlists read from ``.hgr``/``.netD`` can be profiled the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class RentFit:
    """Result of a Rent's-rule fit.

    ``T = t * B^p`` with exponent ``p`` (:attr:`exponent`) and
    coefficient ``t`` (:attr:`coefficient`); :attr:`samples` holds the
    raw (block size, external nets) points.
    """

    exponent: float
    coefficient: float
    r_squared: float
    samples: Tuple[Tuple[int, int], ...]

    def predicted_terminals(self, block_size: int) -> float:
        """Model prediction ``t * B^p``."""
        return self.coefficient * block_size**self.exponent


def external_nets(hypergraph: Hypergraph, block: List[int]) -> int:
    """Number of nets with pins both inside and outside ``block``."""
    inside = set(block)
    count = 0
    seen = set()
    for v in block:
        for e in hypergraph.nets_of(v):
            if e in seen:
                continue
            seen.add(e)
            pins = hypergraph.pins_of(e)
            has_in = any(u in inside for u in pins)
            has_out = any(u not in inside for u in pins)
            if has_in and has_out:
                count += 1
    return count


def rent_analysis(
    hypergraph: Hypergraph,
    partitioner=None,
    min_block: int = 8,
    seed: int = 0,
) -> RentFit:
    """Measure the Rent exponent by recursive bisection sampling.

    Parameters
    ----------
    partitioner:
        Bipartitioner used at every tree level; defaults to flat FM at
        10% tolerance (analysis quality is insensitive to the engine as
        long as cuts are reasonable).
    min_block:
        Recursion stops at blocks of this size.

    Raises ``ValueError`` when the instance yields fewer than three
    sample points (too small to fit).
    """
    if partitioner is None:
        from repro.core.partitioner import FMPartitioner

        partitioner = FMPartitioner(tolerance=0.1)

    samples: List[Tuple[int, int]] = []

    def recurse(block: List[int], level_seed: int) -> None:
        if len(block) < max(min_block, 4):
            return
        t = external_nets(hypergraph, block)
        if t > 0:
            samples.append((len(block), t))
        sub, mapping = hypergraph.induced_subgraph(block)
        if sub.num_vertices < 4:
            return
        result = partitioner.partition(sub, seed=level_seed)
        left = [mapping[i] for i in range(sub.num_vertices)
                if result.assignment[i] == 0]
        right = [mapping[i] for i in range(sub.num_vertices)
                 if result.assignment[i] == 1]
        if not left or not right:
            return
        recurse(left, level_seed * 2 + 1)
        recurse(right, level_seed * 2 + 2)

    recurse(list(hypergraph.vertices()), seed + 1)

    # The root block has no external nets; drop any saturated points
    # (Region II of Rent's rule, where T plateaus near the total).
    usable = [(b, t) for b, t in samples if b < hypergraph.num_vertices]
    if len(usable) < 3:
        raise ValueError(
            f"only {len(usable)} Rent sample(s); instance too small"
        )
    log_b = np.log(np.array([b for b, _ in usable], dtype=float))
    log_t = np.log(np.array([t for _, t in usable], dtype=float))
    slope, intercept = np.polyfit(log_b, log_t, 1)
    predicted = slope * log_b + intercept
    ss_res = float(np.sum((log_t - predicted) ** 2))
    ss_tot = float(np.sum((log_t - np.mean(log_t)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return RentFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
        samples=tuple(usable),
    )
