"""Hypergraph substrate: data structure, construction, I/O, statistics.

This package provides the vertex- and hyperedge-weighted hypergraph model
used throughout the library.  A hypergraph ``H = (V, E)`` is stored in a
compressed (CSR-style) form with both directions of the incidence relation
materialized, so that FM-style inner loops can traverse "nets of a vertex"
and "pins of a net" with zero per-query allocation.

Public entry points
-------------------
``Hypergraph``
    The core immutable data structure.
``HypergraphBuilder``
    Incremental construction with name handling and pin de-duplication.
``read_hgr`` / ``write_hgr``
    hMetis ``.hgr`` text format.
``read_netd`` / ``write_netd``
    ISPD98 ``.netD`` + ``.are`` netlist format (as used by the IBM
    benchmark suite the paper reports on).
``hypergraph_stats``
    Instance statistics matching Section 2.1 of the paper (sparsity,
    degree and net-size distributions, area spread).
``share_hypergraph`` / ``attach_hypergraph`` / ``SharedInstanceSet``
    Zero-copy shared-memory transport of instances between processes
    (the orchestrator's instance plane; see :mod:`repro.hypergraph.shm`).
"""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.builder import HypergraphBuilder
from repro.hypergraph.io_hmetis import read_hgr, write_hgr
from repro.hypergraph.io_netd import read_netd, write_netd
from repro.hypergraph.io_fix import read_fix, write_fix
from repro.hypergraph.io_solution import read_solution, write_solution
from repro.hypergraph.rent import RentFit, external_nets, rent_analysis
from repro.hypergraph.stats import HypergraphStats, hypergraph_stats
from repro.hypergraph.shm import (
    SharedInstanceSet,
    ShmHandle,
    attach_hypergraph,
    detach_handle,
    share_hypergraph,
    shm_available,
    unlink_handle,
)
from repro.hypergraph.validate import validate_hypergraph
from repro.hypergraph.conversion import (
    clique_expansion,
    star_expansion,
    to_networkx,
)

__all__ = [
    "Hypergraph",
    "HypergraphBuilder",
    "read_hgr",
    "write_hgr",
    "read_fix",
    "read_netd",
    "read_solution",
    "write_fix",
    "write_netd",
    "write_solution",
    "HypergraphStats",
    "RentFit",
    "SharedInstanceSet",
    "ShmHandle",
    "attach_hypergraph",
    "detach_handle",
    "share_hypergraph",
    "shm_available",
    "unlink_handle",
    "external_nets",
    "rent_analysis",
    "hypergraph_stats",
    "validate_hypergraph",
    "clique_expansion",
    "star_expansion",
    "to_networkx",
]
