"""Instance statistics matching Section 2.1 of the paper.

The paper lists the salient attributes of real-world partitioning inputs:
sparsity (#nets close to #vertices), average vertex degree 3-5, average
net size 3-5, a small number of extremely large nets, and wide variation
in vertex weights.  ``hypergraph_stats`` computes exactly these descriptors
so that synthetic instances can be checked against the targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class HypergraphStats:
    """Descriptors of a partitioning instance (cf. paper Section 2.1)."""

    num_vertices: int
    num_nets: int
    num_pins: int
    sparsity: float  #: nets per vertex; ~1.0 for real netlists
    avg_degree: float  #: average nets per cell; 3-5 for cell-level designs
    max_degree: int
    avg_net_size: float  #: 3-5 typical; clock/reset nets are outliers
    max_net_size: int
    large_net_count: int  #: nets with >= ``large_net_threshold`` pins
    large_net_threshold: int
    total_area: float
    min_area: float
    max_area: float
    area_spread: float  #: max/min cell area; "wide variation" in real designs
    macro_count: int  #: cells wider than 1% of total area
    degree_histogram: Dict[int, int] = field(default_factory=dict)
    net_size_histogram: Dict[int, int] = field(default_factory=dict)

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"vertices            {self.num_vertices}",
            f"nets                {self.num_nets}",
            f"pins                {self.num_pins}",
            f"sparsity (E/V)      {self.sparsity:.3f}",
            f"avg vertex degree   {self.avg_degree:.2f} (max {self.max_degree})",
            f"avg net size        {self.avg_net_size:.2f} (max {self.max_net_size})",
            f"large nets (>= {self.large_net_threshold})  {self.large_net_count}",
            f"total area          {self.total_area:g}",
            f"area spread         {self.area_spread:.1f}x "
            f"(min {self.min_area:g}, max {self.max_area:g})",
            f"macro cells         {self.macro_count}",
        ]
        return "\n".join(lines)


def hypergraph_stats(
    hypergraph: Hypergraph, large_net_threshold: int = 50
) -> HypergraphStats:
    """Compute :class:`HypergraphStats` for ``hypergraph``."""
    n, m = hypergraph.num_vertices, hypergraph.num_nets
    degrees = [hypergraph.degree(v) for v in range(n)]
    net_sizes = [hypergraph.net_size(e) for e in range(m)]
    areas = hypergraph.vertex_weights

    degree_hist: Dict[int, int] = {}
    for d in degrees:
        degree_hist[d] = degree_hist.get(d, 0) + 1
    size_hist: Dict[int, int] = {}
    for s in net_sizes:
        size_hist[s] = size_hist.get(s, 0) + 1

    total_area = float(sum(areas)) if areas else 0.0
    positive_areas: List[float] = [a for a in areas if a > 0]
    min_area = min(positive_areas) if positive_areas else 0.0
    max_area = max(areas) if areas else 0.0
    macro_cut = 0.01 * total_area
    return HypergraphStats(
        num_vertices=n,
        num_nets=m,
        num_pins=hypergraph.num_pins,
        sparsity=(m / n) if n else 0.0,
        avg_degree=float(np.mean(degrees)) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        avg_net_size=float(np.mean(net_sizes)) if net_sizes else 0.0,
        max_net_size=max(net_sizes) if net_sizes else 0,
        large_net_count=sum(1 for s in net_sizes if s >= large_net_threshold),
        large_net_threshold=large_net_threshold,
        total_area=total_area,
        min_area=min_area,
        max_area=max_area,
        area_spread=(max_area / min_area) if min_area > 0 else 0.0,
        macro_count=sum(1 for a in areas if a > macro_cut),
        degree_histogram=degree_hist,
        net_size_histogram=size_hist,
    )
