"""Core hypergraph data structure.

The representation follows the usual VLSI CAD convention: *vertices* are
cells (with areas as weights) and *nets* are hyperedges (with optional
weights).  Both incidence directions are stored in CSR form:

* ``_net_ptr`` / ``_net_pins`` — for net ``e``, the pins (vertices) are
  ``_net_pins[_net_ptr[e]:_net_ptr[e + 1]]``.
* ``_vtx_ptr`` / ``_vtx_nets`` — for vertex ``v``, the incident nets are
  ``_vtx_nets[_vtx_ptr[v]:_vtx_ptr[v + 1]]``.

Plain Python lists are used rather than numpy arrays because the FM inner
loops index single elements in tight loops, where list indexing is several
times faster than scalar numpy access.  Bulk analysis helpers convert to
numpy on demand.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


class Hypergraph:
    """A vertex- and net-weighted hypergraph.

    Instances are conceptually immutable: all mutation happens through
    :class:`repro.hypergraph.builder.HypergraphBuilder`.  The constructor
    accepts fully-formed pin lists and performs validation and CSR
    compression.

    Parameters
    ----------
    net_pins:
        One sequence of vertex ids per net.  Pins within a net must be
        unique (use the builder to de-duplicate raw netlists).
    num_vertices:
        Total vertex count.  Must cover every pin; isolated vertices (in
        no net) are allowed and commonly arise in real netlists.
    vertex_weights:
        Cell areas.  Defaults to unit areas.
    net_weights:
        Net weights.  Defaults to unit weights (plain cut-size objective).
    vertex_names / net_names:
        Optional external names preserved for I/O round-trips.
    """

    __slots__ = (
        "_num_vertices",
        "_num_nets",
        "_net_ptr",
        "_net_pins",
        "_vtx_ptr",
        "_vtx_nets",
        "_vertex_weights",
        "_net_weights",
        "_vertex_names",
        "_net_names",
        "_total_vertex_weight",
    )

    def __init__(
        self,
        net_pins: Sequence[Sequence[int]],
        num_vertices: int,
        vertex_weights: Optional[Sequence[float]] = None,
        net_weights: Optional[Sequence[float]] = None,
        vertex_names: Optional[Sequence[str]] = None,
        net_names: Optional[Sequence[str]] = None,
    ) -> None:
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._num_nets = len(net_pins)

        net_ptr = [0] * (self._num_nets + 1)
        flat_pins: List[int] = []
        for e, pins in enumerate(net_pins):
            seen = set()
            for v in pins:
                if not 0 <= v < num_vertices:
                    raise ValueError(
                        f"net {e} references vertex {v} outside "
                        f"[0, {num_vertices})"
                    )
                if v in seen:
                    raise ValueError(f"net {e} has duplicate pin {v}")
                seen.add(v)
                flat_pins.append(v)
            net_ptr[e + 1] = len(flat_pins)
        self._net_ptr = net_ptr
        self._net_pins = flat_pins

        if vertex_weights is None:
            vertex_weights = [1.0] * num_vertices
        elif len(vertex_weights) != num_vertices:
            raise ValueError("vertex_weights length mismatch")
        self._vertex_weights = [float(w) for w in vertex_weights]
        for v, w in enumerate(self._vertex_weights):
            if w < 0:
                raise ValueError(f"vertex {v} has negative weight {w}")

        if net_weights is None:
            net_weights = [1.0] * self._num_nets
        elif len(net_weights) != self._num_nets:
            raise ValueError("net_weights length mismatch")
        self._net_weights = [float(w) for w in net_weights]
        for e, w in enumerate(self._net_weights):
            if w < 0:
                raise ValueError(f"net {e} has negative weight {w}")

        self._vertex_names = list(vertex_names) if vertex_names else None
        if self._vertex_names and len(self._vertex_names) != num_vertices:
            raise ValueError("vertex_names length mismatch")
        self._net_names = list(net_names) if net_names else None
        if self._net_names and len(self._net_names) != self._num_nets:
            raise ValueError("net_names length mismatch")

        self._vtx_ptr, self._vtx_nets = _build_transpose(
            num_vertices, self._num_nets, net_ptr, flat_pins
        )

        self._total_vertex_weight = float(sum(self._vertex_weights))

    # ------------------------------------------------------------------
    # Trusted construction from flat CSR (kernel fast path)
    # ------------------------------------------------------------------
    @classmethod
    def from_csr(
        cls,
        net_ptr: List[int],
        net_pins: List[int],
        num_vertices: int,
        vertex_weights: List[float],
        net_weights: List[float],
        validate: bool = False,
        vertex_names: Optional[List[str]] = None,
        net_names: Optional[List[str]] = None,
        transpose: Optional[Tuple[List[int], List[int]]] = None,
    ) -> "Hypergraph":
        """Build a hypergraph directly from flat CSR arrays.

        This is the fast path for kernel-built hypergraphs (the coarsening
        kernel, the netlist builder): the caller *transfers ownership* of
        the four argument lists, which are adopted without copying, and —
        unless ``validate`` is set — without re-validation, on the
        contract that pins are in range and duplicate-free within each
        net, weights are non-negative floats of the right length, and
        ``net_ptr`` is a proper monotone prefix array.

        ``validate=True`` applies the same checks as the list-of-lists
        constructor (useful when adopting CSR data of uncertain origin);
        it still avoids the per-net Python list materialization.

        ``transpose`` optionally supplies a precomputed
        ``(vtx_ptr, vtx_nets)`` vertex→nets CSR, adopted on the same
        trusted-ownership contract (it is *not* validated even under
        ``validate=True``); without it the transpose is rebuilt by
        counting sort.  The shared-memory attach path uses this to skip
        the only remaining O(pins) Python-loop cost of adoption.
        """
        num_nets = len(net_ptr) - 1
        if validate:
            if num_vertices < 0:
                raise ValueError("num_vertices must be non-negative")
            if num_nets < 0 or net_ptr[0] != 0 or net_ptr[-1] != len(net_pins):
                raise ValueError("net_ptr is not a valid prefix array")
            stamp = [-1] * num_vertices
            for e in range(num_nets):
                lo, hi = net_ptr[e], net_ptr[e + 1]
                if hi < lo:
                    raise ValueError("net_ptr is not monotone")
                for i in range(lo, hi):
                    v = net_pins[i]
                    if not 0 <= v < num_vertices:
                        raise ValueError(
                            f"net {e} references vertex {v} outside "
                            f"[0, {num_vertices})"
                        )
                    if stamp[v] == e:
                        raise ValueError(f"net {e} has duplicate pin {v}")
                    stamp[v] = e
            if len(vertex_weights) != num_vertices:
                raise ValueError("vertex_weights length mismatch")
            if len(net_weights) != num_nets:
                raise ValueError("net_weights length mismatch")
            vertex_weights = [float(w) for w in vertex_weights]
            net_weights = [float(w) for w in net_weights]
            for v, w in enumerate(vertex_weights):
                if w < 0:
                    raise ValueError(f"vertex {v} has negative weight {w}")
            for e, w in enumerate(net_weights):
                if w < 0:
                    raise ValueError(f"net {e} has negative weight {w}")
            if vertex_names is not None and len(vertex_names) != num_vertices:
                raise ValueError("vertex_names length mismatch")
            if net_names is not None and len(net_names) != num_nets:
                raise ValueError("net_names length mismatch")
        hg = object.__new__(cls)
        hg._num_vertices = num_vertices
        hg._num_nets = num_nets
        hg._net_ptr = net_ptr
        hg._net_pins = net_pins
        hg._vertex_weights = vertex_weights
        hg._net_weights = net_weights
        hg._vertex_names = vertex_names
        hg._net_names = net_names
        if transpose is not None:
            hg._vtx_ptr, hg._vtx_nets = transpose
        else:
            hg._vtx_ptr, hg._vtx_nets = _build_transpose(
                num_vertices, num_nets, net_ptr, net_pins
            )
        hg._total_vertex_weight = float(sum(vertex_weights))
        return hg

    # ------------------------------------------------------------------
    # Shared-memory transport (see repro.hypergraph.shm)
    # ------------------------------------------------------------------
    def to_shared(self) -> "ShmHandle":  # noqa: F821 - forward ref
        """Export this hypergraph into a shared-memory segment.

        Returns a small picklable :class:`~repro.hypergraph.shm.ShmHandle`
        that any process can turn back into an equivalent hypergraph via
        :meth:`from_shared` — the orchestrator's zero-copy instance
        plane.  The caller owns the segment: pair with
        :func:`repro.hypergraph.shm.unlink_handle` (or manage instances
        through :class:`repro.hypergraph.shm.SharedInstanceSet`).  When
        shared memory is unavailable the handle degrades to carrying the
        hypergraph itself (pickling fallback).
        """
        from repro.hypergraph.shm import share_hypergraph

        return share_hypergraph(self)

    @classmethod
    def from_shared(cls, handle, materialize: bool = True) -> "Hypergraph":
        """Rebuild a hypergraph from a :meth:`to_shared` handle.

        ``materialize=True`` copies the arrays into plain lists (fastest
        for the FM inner loops) and releases the mapping; ``False``
        keeps read-only numpy views into the segment (true zero-copy —
        detach with :func:`repro.hypergraph.shm.detach_handle` when
        done).  Results are bit-identical either way.
        """
        from repro.hypergraph.shm import attach_hypergraph

        return attach_hypergraph(handle, materialize=materialize)

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (cells)."""
        return self._num_vertices

    @property
    def num_nets(self) -> int:
        """Number of nets (hyperedges)."""
        return self._num_nets

    @property
    def num_pins(self) -> int:
        """Total number of pins (sum of net sizes)."""
        return len(self._net_pins)

    @property
    def total_vertex_weight(self) -> float:
        """Sum of all vertex weights (total cell area)."""
        return self._total_vertex_weight

    # ------------------------------------------------------------------
    # Weights and names
    # ------------------------------------------------------------------
    def vertex_weight(self, v: int) -> float:
        """Weight (area) of vertex ``v``."""
        return self._vertex_weights[v]

    def net_weight(self, e: int) -> float:
        """Weight of net ``e``."""
        return self._net_weights[e]

    @property
    def vertex_weights(self) -> List[float]:
        """All vertex weights (copy)."""
        return list(self._vertex_weights)

    @property
    def net_weights(self) -> List[float]:
        """All net weights (copy)."""
        return list(self._net_weights)

    def vertex_name(self, v: int) -> str:
        """External name of vertex ``v`` (synthesized if absent)."""
        if self._vertex_names is not None:
            return self._vertex_names[v]
        return f"v{v}"

    def net_name(self, e: int) -> str:
        """External name of net ``e`` (synthesized if absent)."""
        if self._net_names is not None:
            return self._net_names[e]
        return f"n{e}"

    # ------------------------------------------------------------------
    # Incidence traversal
    # ------------------------------------------------------------------
    def pins_of(self, e: int) -> List[int]:
        """Vertices on net ``e`` (fresh list)."""
        return self._net_pins[self._net_ptr[e] : self._net_ptr[e + 1]]

    def nets_of(self, v: int) -> List[int]:
        """Nets incident to vertex ``v`` (fresh list)."""
        return self._vtx_nets[self._vtx_ptr[v] : self._vtx_ptr[v + 1]]

    def net_size(self, e: int) -> int:
        """Number of pins of net ``e``."""
        return self._net_ptr[e + 1] - self._net_ptr[e]

    def degree(self, v: int) -> int:
        """Number of nets incident to vertex ``v``."""
        return self._vtx_ptr[v + 1] - self._vtx_ptr[v]

    def nets(self) -> range:
        """Iterable over net ids."""
        return range(self._num_nets)

    def vertices(self) -> range:
        """Iterable over vertex ids."""
        return range(self._num_vertices)

    def weight_fingerprint(self) -> Tuple[int, int, int, float, float]:
        """Cheap, order-sensitive checksum of the weight vectors.

        Hypergraphs are conceptually immutable, but nothing in Python
        stops a caller from reaching into the weight arrays.  Engines
        that cache per-hypergraph invariants (integer net weights, gain
        bounds) key their caches on this fingerprint in addition to
        object identity, so an out-of-band weight mutation invalidates
        the cache instead of silently reusing stale gains.  Positional
        weighting makes weight *swaps* visible too; this is a change
        detector, not a cryptographic hash.
        """
        vw = 0.0
        i = 1
        for w in self._vertex_weights:
            vw += i * w
            i += 1
        nw = 0.0
        i = 1
        for w in self._net_weights:
            nw += i * w
            i += 1
        return (self._num_vertices, self._num_nets, len(self._net_pins), vw, nw)

    # Raw CSR access for performance-critical consumers (FM engine).
    @property
    def raw_csr(
        self,
    ) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Internal CSR arrays ``(net_ptr, net_pins, vtx_ptr, vtx_nets)``.

        Exposed for the FM inner loops; callers must not mutate them.
        """
        return self._net_ptr, self._net_pins, self._vtx_ptr, self._vtx_nets

    # ------------------------------------------------------------------
    # Objective evaluation
    # ------------------------------------------------------------------
    def cut_size(self, assignment: Sequence[int]) -> float:
        """Weighted cut of ``assignment`` (net-cut objective).

        A net is cut when its pins do not all lie in a single partition.
        Works for any number of parts; pin-less nets are never cut.
        """
        if len(assignment) != self._num_vertices:
            raise ValueError("assignment length mismatch")
        total = 0.0
        net_ptr, net_pins = self._net_ptr, self._net_pins
        for e in range(self._num_nets):
            lo, hi = net_ptr[e], net_ptr[e + 1]
            if hi - lo < 2:
                continue
            first = assignment[net_pins[lo]]
            for i in range(lo + 1, hi):
                if assignment[net_pins[i]] != first:
                    total += self._net_weights[e]
                    break
        return total

    def connectivity_cut(self, assignment: Sequence[int]) -> float:
        """(k-1)-connectivity objective: ``sum_e w_e * (lambda_e - 1)``.

        ``lambda_e`` is the number of distinct parts spanned by net ``e``.
        Equals :meth:`cut_size` for 2-way partitions.
        """
        if len(assignment) != self._num_vertices:
            raise ValueError("assignment length mismatch")
        total = 0.0
        net_ptr, net_pins = self._net_ptr, self._net_pins
        for e in range(self._num_nets):
            lo, hi = net_ptr[e], net_ptr[e + 1]
            if hi - lo < 2:
                continue
            parts = {assignment[net_pins[i]] for i in range(lo, hi)}
            if len(parts) > 1:
                total += self._net_weights[e] * (len(parts) - 1)
        return total

    def part_weights(self, assignment: Sequence[int], k: int = 2) -> List[float]:
        """Total vertex weight per part under ``assignment``."""
        weights = [0.0] * k
        for v in range(self._num_vertices):
            weights[assignment[v]] += self._vertex_weights[v]
        return weights

    # ------------------------------------------------------------------
    # Derived hypergraphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, vertex_ids: Iterable[int]
    ) -> Tuple["Hypergraph", List[int]]:
        """Subhypergraph induced by ``vertex_ids``.

        Nets are restricted to the kept pins; nets left with fewer than
        two pins are dropped (they can never be cut).  Returns the new
        hypergraph and the list mapping new vertex ids to old ids.
        """
        keep = sorted(set(vertex_ids))
        old_to_new = {old: new for new, old in enumerate(keep)}
        new_nets: List[List[int]] = []
        new_net_weights: List[float] = []
        for e in range(self._num_nets):
            pins = [old_to_new[v] for v in self.pins_of(e) if v in old_to_new]
            if len(pins) >= 2:
                new_nets.append(pins)
                new_net_weights.append(self._net_weights[e])
        sub = Hypergraph(
            new_nets,
            num_vertices=len(keep),
            vertex_weights=[self._vertex_weights[v] for v in keep],
            net_weights=new_net_weights,
            vertex_names=(
                [self._vertex_names[v] for v in keep]
                if self._vertex_names
                else None
            ),
        )
        return sub, keep

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self._num_vertices}, |E|={self._num_nets}, "
            f"pins={self.num_pins}, area={self._total_vertex_weight:g})"
        )


def _build_transpose(
    num_vertices: int,
    num_nets: int,
    net_ptr: List[int],
    flat_pins: List[int],
) -> Tuple[List[int], List[int]]:
    """Vertex -> nets CSR from the net -> pins CSR, by counting sort."""
    vtx_ptr = [0] * (num_vertices + 1)
    for v in flat_pins:
        vtx_ptr[v + 1] += 1
    for v in range(num_vertices):
        vtx_ptr[v + 1] += vtx_ptr[v]
    vtx_nets = [0] * len(flat_pins)
    cursor = list(vtx_ptr)
    for e in range(num_nets):
        for i in range(net_ptr[e], net_ptr[e + 1]):
            v = flat_pins[i]
            vtx_nets[cursor[v]] = e
            cursor[v] += 1
    return vtx_ptr, vtx_nets
