"""hMetis ``.hgr`` text format reader and writer.

Format (hMetis 1.5 user manual):

* First line: ``<#nets> <#vertices> [fmt]`` where ``fmt`` is ``1`` for
  net weights, ``10`` for vertex weights, ``11`` for both.
* One line per net: ``[weight] pin pin ...`` with 1-based vertex ids.
* If vertex weights are present, one weight per line follows the nets.
* Lines starting with ``%`` are comments.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, TextIO, Union

from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


def _open_text(source: Union[PathLike, TextIO], mode: str) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, mode, encoding="ascii")
    return source


def read_hgr(source: Union[PathLike, TextIO]) -> Hypergraph:
    """Read a hypergraph in hMetis ``.hgr`` format.

    ``source`` may be a path or an open text stream.  Raises
    ``ValueError`` on malformed input.
    """
    stream = _open_text(source, "r")
    close = isinstance(source, (str, Path))
    try:
        lines = [
            ln.strip()
            for ln in stream
            if ln.strip() and not ln.lstrip().startswith("%")
        ]
    finally:
        if close:
            stream.close()
    if not lines:
        raise ValueError("empty .hgr file")

    header = lines[0].split()
    if len(header) not in (2, 3):
        raise ValueError(f"bad .hgr header: {lines[0]!r}")
    num_nets, num_vertices = int(header[0]), int(header[1])
    fmt = header[2] if len(header) == 3 else "0"
    has_net_weights = fmt in ("1", "11")
    has_vertex_weights = fmt in ("10", "11")

    expected = 1 + num_nets + (num_vertices if has_vertex_weights else 0)
    if len(lines) < expected:
        raise ValueError(
            f".hgr truncated: expected {expected} lines, got {len(lines)}"
        )

    nets: List[List[int]] = []
    net_weights: Optional[List[float]] = [] if has_net_weights else None
    for e in range(num_nets):
        fields = lines[1 + e].split()
        if has_net_weights:
            assert net_weights is not None
            net_weights.append(float(fields[0]))
            fields = fields[1:]
        pins = []
        seen = set()
        for f in fields:
            v = int(f) - 1
            if not 0 <= v < num_vertices:
                raise ValueError(f"net {e} pin {f} out of range")
            if v not in seen:
                seen.add(v)
                pins.append(v)
        nets.append(pins)

    vertex_weights: Optional[List[float]] = None
    if has_vertex_weights:
        vertex_weights = [
            float(lines[1 + num_nets + v]) for v in range(num_vertices)
        ]

    return Hypergraph(
        nets,
        num_vertices=num_vertices,
        vertex_weights=vertex_weights,
        net_weights=net_weights,
    )


def write_hgr(
    hypergraph: Hypergraph,
    destination: Union[PathLike, TextIO],
    write_net_weights: bool = False,
    write_vertex_weights: bool = True,
) -> None:
    """Write ``hypergraph`` in hMetis ``.hgr`` format."""
    fmt_bits = ("1" if write_vertex_weights else "0") + (
        "1" if write_net_weights else "0"
    )
    fmt = {"00": "", "01": "1", "10": "10", "11": "11"}[fmt_bits]

    buf = io.StringIO()
    header = f"{hypergraph.num_nets} {hypergraph.num_vertices}"
    if fmt:
        header += f" {fmt}"
    buf.write(header + "\n")
    for e in range(hypergraph.num_nets):
        parts = []
        if write_net_weights:
            parts.append(_fmt_weight(hypergraph.net_weight(e)))
        parts.extend(str(v + 1) for v in hypergraph.pins_of(e))
        buf.write(" ".join(parts) + "\n")
    if write_vertex_weights:
        for v in range(hypergraph.num_vertices):
            buf.write(_fmt_weight(hypergraph.vertex_weight(v)) + "\n")

    stream = _open_text(destination, "w")
    close = isinstance(destination, (str, Path))
    try:
        stream.write(buf.getvalue())
    finally:
        if close:
            stream.close()


def _fmt_weight(w: float) -> str:
    """hMetis weights are integers; emit ints when exact."""
    if w == int(w):
        return str(int(w))
    return repr(w)
