"""ISPD98 ``.netD`` + ``.are`` netlist format.

This is the format of the IBM benchmark suite [Alpert, ISPD98] the paper
reports on.  The ``.netD`` file lists pins grouped into nets; the ``.are``
file carries actual cell areas.

``.netD`` layout::

    0
    <#pins>
    <#nets>
    <#modules>
    <pad offset>
    <module> <s|l> <I|O|B>
    ...

Module names are ``a<k>`` for cells and ``p<k>`` for pads.  A pin line
with ``s`` starts a new net; ``l`` continues the current net.  The third
field is the pin direction (input/output/bidirectional), preserved on
read but irrelevant to undirected partitioning.

``.are`` layout: one ``<module> <area>`` pair per line.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.hypergraph.builder import HypergraphBuilder
from repro.hypergraph.hypergraph import Hypergraph

PathLike = Union[str, Path]


def read_netd(
    netd_path: PathLike, are_path: Optional[PathLike] = None
) -> Hypergraph:
    """Read an ISPD98 ``.netD`` netlist, optionally with ``.are`` areas.

    Without an ``.are`` file all modules get unit area.  Single-pin and
    duplicate-pin anomalies are cleaned up as in
    :class:`~repro.hypergraph.builder.HypergraphBuilder`.
    """
    text = Path(netd_path).read_text(encoding="ascii")
    tokens_by_line = [
        ln.split() for ln in text.splitlines() if ln.strip()
    ]
    if len(tokens_by_line) < 5:
        raise ValueError(".netD header truncated")
    if tokens_by_line[0] != ["0"]:
        raise ValueError(".netD must start with a '0' line")
    num_pins = int(tokens_by_line[1][0])
    num_nets = int(tokens_by_line[2][0])
    num_modules = int(tokens_by_line[3][0])
    pad_offset = int(tokens_by_line[4][0])

    pin_lines = tokens_by_line[5:]
    if len(pin_lines) != num_pins:
        raise ValueError(
            f".netD declares {num_pins} pins but lists {len(pin_lines)}"
        )

    builder = HypergraphBuilder()
    # Pre-register modules so vertex ids are dense and name-ordered:
    # cells a0..a<pad_offset>, pads p1..  (the ISPD98 convention is that
    # modules with index > pad_offset are pads).
    del num_modules  # implied by the pin list; names drive registration

    current_net: List[int] = []
    net_count = 0
    for fields in pin_lines:
        if len(fields) < 2:
            raise ValueError(f"bad .netD pin line: {fields!r}")
        name, flag = fields[0], fields[1]
        vid = builder.vertex_id(name)
        if flag == "s":
            if current_net:
                builder.add_net(current_net, name=f"net{net_count}")
                net_count += 1
            current_net = [vid]
        elif flag == "l":
            if not current_net:
                raise ValueError("continuation pin before any 's' pin")
            current_net.append(vid)
        else:
            raise ValueError(f"unknown pin flag {flag!r}")
    if current_net:
        builder.add_net(current_net, name=f"net{net_count}")
        net_count += 1
    if net_count != num_nets:
        raise ValueError(
            f".netD declares {num_nets} nets but contains {net_count}"
        )

    if are_path is not None:
        for name, area in _read_are(are_path).items():
            # Areas may mention modules absent from every net.
            builder.set_vertex_weight(builder.vertex_id(name), area)

    del pad_offset  # retained in the writer; not needed for partitioning
    return builder.build()


def _read_are(are_path: PathLike) -> Dict[str, float]:
    areas: Dict[str, float] = {}
    for ln in Path(are_path).read_text(encoding="ascii").splitlines():
        fields = ln.split()
        if not fields:
            continue
        if len(fields) != 2:
            raise ValueError(f"bad .are line: {ln!r}")
        areas[fields[0]] = float(fields[1])
    return areas


def write_netd(
    hypergraph: Hypergraph,
    netd_path: PathLike,
    are_path: Optional[PathLike] = None,
    pad_prefix: str = "p",
) -> None:
    """Write ``hypergraph`` as ``.netD`` (+ optional ``.are``).

    Vertex names from the hypergraph are used as module names.  Vertices
    whose name starts with ``pad_prefix`` count as pads for the header's
    pad-offset field.
    """
    lines: List[str] = []
    num_pins = hypergraph.num_pins
    pads = sum(
        1
        for v in range(hypergraph.num_vertices)
        if hypergraph.vertex_name(v).startswith(pad_prefix)
    )
    pad_offset = hypergraph.num_vertices - pads - 1
    lines.append("0")
    lines.append(str(num_pins))
    lines.append(str(hypergraph.num_nets))
    lines.append(str(hypergraph.num_vertices))
    lines.append(str(pad_offset))
    for e in range(hypergraph.num_nets):
        for i, v in enumerate(hypergraph.pins_of(e)):
            flag = "s" if i == 0 else "l"
            lines.append(f"{hypergraph.vertex_name(v)} {flag} B")
    Path(netd_path).write_text("\n".join(lines) + "\n", encoding="ascii")

    if are_path is not None:
        area_lines = [
            f"{hypergraph.vertex_name(v)} {hypergraph.vertex_weight(v):g}"
            for v in range(hypergraph.num_vertices)
        ]
        Path(are_path).write_text(
            "\n".join(area_lines) + "\n", encoding="ascii"
        )


def netd_round_trip_names(hypergraph: Hypergraph) -> Tuple[List[str], List[str]]:
    """Names that :func:`write_netd` will emit (cells first, then pads)."""
    names = [hypergraph.vertex_name(v) for v in range(hypergraph.num_vertices)]
    cells = [n for n in names if not n.startswith("p")]
    pads = [n for n in names if n.startswith("p")]
    return cells, pads
