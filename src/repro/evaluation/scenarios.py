"""Scenario layer: k-way and terminal-propagation campaign workloads.

The paper's methodology is *fair comparison across scenarios*, yet a
campaign spec only knows heuristics that follow the 2-way bipartitioner
protocol.  This module closes the gap with a declarative
:class:`Scenario` (JSON-serializable, so service job specs can carry
it) and a :class:`ScenarioHeuristic` adapter that makes any scenario
look like a campaign heuristic:

* ``kind="kway"`` — partition into ``k`` parts by recursive bisection
  (``method="rb"``, any CLI ladder engine as the inner bipartitioner)
  or direct k-way FM (``method="direct"``), ranked by net cut or the
  hMetis connectivity ((lambda - 1)) objective under the documented
  per-k balance model (:class:`~repro.core.kway.KWayBalance`);
* ``kind="terminal-propagation"`` — drive
  :class:`~repro.placement.topdown.TopDownPlacer` end to end (external
  pins of spanning nets become fixed dummy terminals in every
  sub-instance), ranked by half-perimeter wirelength.

The adapter funnels the scenario's objective value through the
record's ``cut`` field, so the whole reporting stack — BSF curves,
Pareto frontiers, speed-dependent rankings, significance tests — ranks
the declared objective without modification, and stamps ``k`` and
``objective`` on every trial record via the executor's payload.

Determinism contract: a scenario trial is a pure function of
``(scenario, instance, seed)`` — engines are built fresh per call from
the declarative fields, the placer seeds its private RNG from the trial
seed — so scenario campaigns inherit the orchestrator's guarantees
(records bit-identical serial vs batched/sticky/in-run-parallel,
journals resumable after a kill) with no extra machinery.  Adapters are
picklable (they hold only the frozen scenario), which is what lets the
pool and service fleets ship them in spawn payloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.kway import KWayBalance, RecursiveBisection
from repro.core.kway_fm import KWayFM
from repro.hypergraph.hypergraph import Hypergraph

#: Engine ladder names a scenario may name as its inner bipartitioner —
#: the same names ``repro partition --engine`` takes, built by the same
#: factory (:func:`repro.cli._make_engine`), so a scenario computes
#: exactly what the standalone CLI computes.  ``repro.service.spec``
#: re-exports this tuple as the job-spec engine vocabulary.
ENGINE_NAMES = ("flat-lifo", "flat-clip", "ml-lifo", "ml-clip", "weak")

SCENARIO_KINDS = ("kway", "terminal-propagation")
SCENARIO_OBJECTIVES = ("cut", "connectivity", "hpwl")
KWAY_METHODS = ("rb", "direct")


class _EngineFactory:
    """Picklable ``(tolerance) -> bipartitioner`` factory for one CLI
    ladder engine.

    Recursive bisection calls its factory once per split with the
    split's own budgeted tolerance, so this must be a real callable —
    and pool workers unpickle it, so it must be a module-level class,
    not the lambda :class:`RecursiveBisection` defaults to.  The CLI
    import is deferred to call time (the same pattern as
    :func:`repro.service.spec.make_engine`) to keep this module free of
    import cycles.
    """

    def __init__(self, engine: str) -> None:
        self.engine = engine

    def __call__(self, tolerance: float):
        from repro.cli import _make_engine

        return _make_engine(self.engine, tolerance)


@dataclass(frozen=True)
class Scenario:
    """One declarative campaign workload.

    Fields beyond ``kind`` are interpreted per kind: ``k``/``method``
    apply to k-way scenarios (``objective`` is "cut" or
    "connectivity"); ``min_region_cells`` applies to
    terminal-propagation scenarios (whose objective is always "hpwl").
    ``engine`` names the inner 2-way bipartitioner from the CLI ladder
    in both kinds; ``tolerance`` is the per-part balance tolerance
    (k-way) or the per-bisection tolerance (placement).  ``label``
    overrides the derived heuristic name.
    """

    kind: str
    k: int = 2
    objective: str = "cut"
    method: str = "rb"
    engine: str = "flat-lifo"
    tolerance: float = 0.1
    min_region_cells: int = 12
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; "
                f"choose from {SCENARIO_KINDS}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError("tolerance must lie in (0, 1)")
        if self.kind == "kway":
            if self.k < 2:
                raise ValueError("k must be >= 2")
            if self.method not in KWAY_METHODS:
                raise ValueError(
                    f"unknown k-way method {self.method!r}; "
                    f"choose from {KWAY_METHODS}"
                )
            if self.objective not in ("cut", "connectivity"):
                raise ValueError(
                    "k-way scenarios rank 'cut' or 'connectivity', "
                    f"not {self.objective!r}"
                )
        else:
            if self.objective != "hpwl":
                raise ValueError(
                    "terminal-propagation scenarios rank 'hpwl', "
                    f"not {self.objective!r}"
                )
            if self.min_region_cells < 1:
                raise ValueError("min_region_cells must be >= 1")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Heuristic name inside campaigns (journal lines, reports)."""
        if self.label:
            return self.label
        if self.kind == "kway":
            return f"{self.method}-k{self.k}-{self.objective}[{self.engine}]"
        return f"topdown-tp-hpwl[{self.engine}]"

    # -- wire format ----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "objective": self.objective,
            "engine": self.engine,
            "tolerance": self.tolerance,
        }
        if self.kind == "kway":
            out["k"] = self.k
            out["method"] = self.method
        else:
            out["min_region_cells"] = self.min_region_cells
        if self.label:
            out["label"] = self.label
        return out

    @staticmethod
    def from_json(data: Dict[str, object]) -> "Scenario":
        kind = str(data["kind"])
        return Scenario(
            kind=kind,
            k=int(data.get("k", 2)),
            objective=str(
                data.get(
                    "objective",
                    "hpwl" if kind == "terminal-propagation" else "cut",
                )
            ),
            method=str(data.get("method", "rb")),
            engine=str(data.get("engine", "flat-lifo")),
            tolerance=float(data.get("tolerance", 0.1)),
            min_region_cells=int(data.get("min_region_cells", 12)),
            label=data.get("label"),
        )


@dataclass
class ScenarioResult:
    """Bipartitioner-protocol result of one scenario trial.

    ``cut`` is the scenario's *objective value* (net cut, (lambda - 1)
    or HPWL) — the field the executor journals and the reporting stack
    ranks.
    """

    cut: float
    assignment: List[int]
    legal: bool
    runtime_seconds: float


class ScenarioHeuristic:
    """Campaign-heuristic adapter around one :class:`Scenario`.

    Follows the bipartitioner protocol (``partition(hg, seed=...)`` →
    an object with ``cut`` / ``assignment`` / ``legal`` /
    ``runtime_seconds``) and exposes ``k`` and ``objective`` for the
    executor's record stamping.  It deliberately does *not* satisfy
    :func:`repro.multilevel.pool.supports_hierarchy` — a scenario trial
    owns its whole inner flow (many bisections, each on a different
    sub-instance), so sticky hierarchy pools have nothing to reuse and
    simply skip it.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.name = scenario.name
        self.k = scenario.k if scenario.kind == "kway" else 2
        self.objective = scenario.objective

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScenarioHeuristic({self.name})"

    # ------------------------------------------------------------------
    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> ScenarioResult:
        if fixed_parts is not None and any(
            p is not None for p in fixed_parts
        ):
            raise ValueError(
                "scenario heuristics define their own fixed vertices "
                "(terminal propagation); campaign-level fixed_parts are "
                "not supported"
            )
        sc = self.scenario
        t0 = time.perf_counter()
        if sc.kind == "kway":
            if sc.method == "direct":
                engine = KWayFM(
                    sc.k, tolerance=sc.tolerance, objective=sc.objective
                )
                res = engine.partition(hypergraph, seed=seed)
            else:
                rb = RecursiveBisection(
                    sc.k,
                    tolerance=sc.tolerance,
                    partitioner_factory=_EngineFactory(sc.engine),
                )
                res = rb.partition(hypergraph, seed=seed)
            value = (
                res.connectivity
                if sc.objective == "connectivity"
                else res.cut
            )
            return ScenarioResult(
                cut=value,
                assignment=list(res.assignment),
                legal=res.legal,
                runtime_seconds=time.perf_counter() - t0,
            )

        from repro.placement.topdown import TopDownPlacer

        placer = TopDownPlacer(
            partitioner=_EngineFactory(sc.engine)(sc.tolerance),
            min_region_cells=sc.min_region_cells,
            terminal_propagation=True,
            seed=seed,
        )
        placement = placer.place(hypergraph)
        # A 2-way assignment view of the placement (left vs right die
        # half) so multistart consumers that expect one still work.
        mid = placer.die_width / 2.0
        assignment = [
            0 if placement.positions[v][0] <= mid else 1
            for v in range(hypergraph.num_vertices)
        ]
        return ScenarioResult(
            cut=placement.hpwl(),
            assignment=assignment,
            legal=True,
            runtime_seconds=time.perf_counter() - t0,
        )


# ----------------------------------------------------------------------
def kway_axes(
    ks: Sequence[int] = (2, 4, 8),
    objective: str = "connectivity",
    method: str = "rb",
    engine: str = "flat-lifo",
    tolerance: float = 0.1,
) -> List[ScenarioHeuristic]:
    """Ready-to-race heuristics for a ``k`` axis sweep.

    One :class:`ScenarioHeuristic` per ``k``, all sharing the inner
    engine, objective and tolerance — drop the list straight into
    :class:`~repro.evaluation.campaign.CampaignSpec.heuristics` (or mix
    with 2-way engines) to compare partitioning depth apples to apples
    on the shared per-instance seed stream.
    """
    return [
        ScenarioHeuristic(
            Scenario(
                kind="kway",
                k=k,
                objective=objective,
                method=method,
                engine=engine,
                tolerance=tolerance,
            )
        )
        for k in ks
    ]


def balance_for(
    hypergraph: Hypergraph, scenario: Scenario
) -> KWayBalance:
    """The balance window a k-way scenario's results are judged by."""
    if scenario.kind != "kway":
        raise ValueError("balance_for applies to k-way scenarios")
    return KWayBalance(
        hypergraph.total_vertex_weight, scenario.k, scenario.tolerance
    )
