"""Experiment record types shared by the evaluation machinery.

A :class:`TrialRecord` is one independent start of one heuristic on one
instance — the atom from which every reporting style (min/avg tables,
BSF curves, Pareto frontiers, rankings, significance tests) is derived.
Collecting *all* per-trial data and deriving reports afterwards is the
"Do collect all data possible" maxim the paper quotes from Gent et al.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Union


@dataclass(frozen=True)
class TrialRecord:
    """One independent single-start trial.

    ``cut`` always holds the trial's *objective value* — the net cut
    for 2-way trials, the connectivity ((lambda - 1)) sum or the HPWL
    for scenario trials — so every downstream consumer (BSF curves,
    Pareto frontiers, rankings, significance tests) ranks the objective
    the scenario declared without knowing about scenarios.  ``k`` and
    ``objective`` record which workload produced the value; records
    saved before these fields existed load with the 2-way defaults.
    """

    heuristic: str
    instance: str
    seed: int
    cut: float
    runtime_seconds: float
    legal: bool
    k: int = 2
    objective: str = "cut"


def group_by(
    records: Iterable[TrialRecord], *fields: str
) -> Dict[tuple, List[TrialRecord]]:
    """Group records by a tuple of field names (e.g. heuristic, instance)."""
    groups: Dict[tuple, List[TrialRecord]] = {}
    for r in records:
        key = tuple(getattr(r, f) for f in fields)
        groups.setdefault(key, []).append(r)
    return groups


def min_cut(records: Iterable[TrialRecord]) -> float:
    """Minimum cut over records."""
    return min(r.cut for r in records)


def avg_cut(records: Iterable[TrialRecord]) -> float:
    """Average cut over records."""
    rs = list(records)
    return sum(r.cut for r in rs) / len(rs)


def avg_runtime(records: Iterable[TrialRecord]) -> float:
    """Average per-start runtime in seconds."""
    rs = list(records)
    return sum(r.runtime_seconds for r in rs) / len(rs)


def save_records(records: Iterable[TrialRecord], path: Union[str, Path]) -> None:
    """Persist records as JSON lines (one trial per line)."""
    with open(path, "w", encoding="ascii") as f:
        for r in records:
            f.write(json.dumps(asdict(r)) + "\n")


def load_records(path: Union[str, Path]) -> List[TrialRecord]:
    """Load records saved by :func:`save_records`."""
    out: List[TrialRecord] = []
    with open(path, "r", encoding="ascii") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(TrialRecord(**json.loads(line)))
    return out
