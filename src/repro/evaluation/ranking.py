"""Speed-dependent ranking of heuristics (Schreiber-Martin style).

For every CPU budget tau in a grid, heuristics are ranked by the mean of
their c_tau distribution (best cost within tau, bootstrapped over
orderings of recorded starts).  The result is the "ranking diagram
diagnostic" the paper describes: regions of (CPU time) dominance for
each heuristic.  Heuristics whose fastest start exceeds tau are marked
unavailable in that regime rather than silently ranked.

Seeding: every (heuristic, tau) bootstrap runs on an independent RNG
derived from ``base_seed`` and the heuristic's *name* via
:func:`repro.evaluation.bsf.eval_seed` — never on a shared RNG threaded
through the group loop.  A heuristic's reported mean c_tau is therefore
a pure function of its own records and the base seed: adding or
removing a competitor cannot change it (the old shared-RNG threading
did exactly that — the irreproducibility Brglez warns against).  All
taus of one heuristic replay the same shuffle stream (common random
numbers), which both stabilizes the diagram across grid choices and
lets the vectorized kernel share one ordering matrix per heuristic
across the whole tau grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evaluation.bsf import (
    BootstrapKernel,
    KernelCache,
    default_tau_grid,
    eval_seed,
)
from repro.evaluation.records import TrialRecord, group_by


@dataclass
class RankingDiagram:
    """Mean c_tau per heuristic over a grid of CPU budgets."""

    taus: List[float]
    mean_ctau: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    @property
    def heuristics(self) -> List[str]:
        return sorted(self.mean_ctau)

    def winner_at(self, index: int) -> Optional[str]:
        """Heuristic with the lowest mean c_tau at grid point ``index``
        (ties broken alphabetically; None when nothing can run)."""
        best: Optional[str] = None
        best_val = float("inf")
        for name in self.heuristics:
            val = self.mean_ctau[name][index]
            if val is not None and val < best_val:
                best_val = val
                best = name
        return best

    def dominance_regions(self) -> List[Tuple[float, float, Optional[str]]]:
        """Maximal runs of grid points with one winner, as
        ``(tau_first, tau_last, winner)``.

        The regions partition the grid: every grid point belongs to
        exactly one region (a single-point run yields
        ``tau_first == tau_last`` — the honest answer at grid
        resolution, instead of the old rendering that let the previous
        winner's region overlap the change point and pinned the new
        winner to a zero-width afterthought).  ``winner is None``
        regions are reported, not dropped: they mark budgets where *no*
        heuristic completes a start — the "cannot run in this regime"
        verdict the diagram exists to surface.
        """
        regions: List[Tuple[float, float, Optional[str]]] = []
        for i, tau in enumerate(self.taus):
            w = self.winner_at(i)
            if regions and regions[-1][2] == w:
                regions[-1] = (regions[-1][0], tau, w)
            else:
                regions.append((tau, tau, w))
        return regions

    def render(self) -> str:
        """ASCII table: one row per tau, one column per heuristic, the
        per-row winner starred."""
        names = self.heuristics
        header = ["tau (s)"] + names
        rows: List[List[str]] = []
        for i, tau in enumerate(self.taus):
            winner = self.winner_at(i)
            row = [f"{tau:.3g}"]
            for name in names:
                val = self.mean_ctau[name][i]
                if val is None:
                    cell = "-"
                else:
                    cell = f"{val:.1f}" + ("*" if name == winner else "")
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        def fmt(row: List[str]) -> str:
            return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        return "\n".join([fmt(header)] + [fmt(r) for r in rows])


def ranking_diagram(
    records: Sequence[TrialRecord],
    taus: Optional[Sequence[float]] = None,
    num_shuffles: int = 200,
    base_seed: int = 0,
    cache: Optional[KernelCache] = None,
) -> RankingDiagram:
    """Build a :class:`RankingDiagram` from per-trial records of several
    heuristics on one instance.

    Each heuristic's bootstrap runs on its own derived seed
    (:func:`eval_seed`), one vectorized kernel per heuristic shared
    across the whole tau grid.  Pass a :class:`KernelCache` to reuse
    kernels across repeated calls on growing record sets (the streaming
    report path); results are identical with or without the cache.
    """
    if taus is None:
        taus = default_tau_grid(list(records))
    diagram = RankingDiagram(taus=list(taus))
    for (name,), rs in group_by(records, "heuristic").items():
        seed = eval_seed(base_seed, name)
        if cache is not None:
            kernel = cache.kernel(name, rs, num_shuffles, seed)
        else:
            kernel = BootstrapKernel(rs, num_shuffles, seed)
        diagram.mean_ctau[name] = [kernel.mean_c_tau(tau) for tau in taus]
    return diagram
