"""Speed-dependent ranking of heuristics (Schreiber-Martin style).

For every CPU budget tau in a grid, heuristics are ranked by the mean of
their c_tau distribution (best cost within tau, bootstrapped over
orderings of recorded starts).  The result is the "ranking diagram
diagnostic" the paper describes: regions of (CPU time) dominance for
each heuristic.  Heuristics whose fastest start exceeds tau are marked
unavailable in that regime rather than silently ranked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.bsf import c_tau_samples, default_tau_grid
from repro.evaluation.records import TrialRecord, group_by


@dataclass
class RankingDiagram:
    """Mean c_tau per heuristic over a grid of CPU budgets."""

    taus: List[float]
    mean_ctau: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    @property
    def heuristics(self) -> List[str]:
        return sorted(self.mean_ctau)

    def winner_at(self, index: int) -> Optional[str]:
        """Heuristic with the lowest mean c_tau at grid point ``index``
        (ties broken alphabetically; None when nothing can run)."""
        best: Optional[str] = None
        best_val = float("inf")
        for name in self.heuristics:
            val = self.mean_ctau[name][index]
            if val is not None and val < best_val:
                best_val = val
                best = name
        return best

    def dominance_regions(self) -> List[tuple]:
        """Contiguous (tau_start, tau_end, winner) regions of the grid."""
        regions: List[tuple] = []
        current: Optional[str] = None
        start_tau: Optional[float] = None
        for i, tau in enumerate(self.taus):
            w = self.winner_at(i)
            if w != current:
                if current is not None and start_tau is not None:
                    regions.append((start_tau, tau, current))
                current = w
                start_tau = tau
        if current is not None and start_tau is not None:
            regions.append((start_tau, self.taus[-1], current))
        return regions

    def render(self) -> str:
        """ASCII table: one row per tau, one column per heuristic, the
        per-row winner starred."""
        names = self.heuristics
        header = ["tau (s)"] + names
        rows: List[List[str]] = []
        for i, tau in enumerate(self.taus):
            winner = self.winner_at(i)
            row = [f"{tau:.3g}"]
            for name in names:
                val = self.mean_ctau[name][i]
                if val is None:
                    cell = "-"
                else:
                    cell = f"{val:.1f}" + ("*" if name == winner else "")
                row.append(cell)
            rows.append(row)
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        def fmt(row: List[str]) -> str:
            return "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        return "\n".join([fmt(header)] + [fmt(r) for r in rows])


def ranking_diagram(
    records: Sequence[TrialRecord],
    taus: Optional[Sequence[float]] = None,
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> RankingDiagram:
    """Build a :class:`RankingDiagram` from per-trial records of several
    heuristics on one instance."""
    if rng is None:
        rng = random.Random(0)
    if taus is None:
        taus = default_tau_grid(list(records))
    diagram = RankingDiagram(taus=list(taus))
    for (name,), rs in group_by(records, "heuristic").items():
        means: List[Optional[float]] = []
        for tau in taus:
            samples = c_tau_samples(rs, tau, num_shuffles, rng)
            means.append(sum(samples) / len(samples) if samples else None)
        diagram.mean_ctau[name] = means
    return diagram
