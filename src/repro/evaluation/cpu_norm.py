"""CPU-time normalization across machines (paper footnote 9).

The paper ran experiments on 110MHz Sparc-5s, 300MHz Ultra-10s and
normalized everything to 200MHz Ultra-2 seconds, computing *conversion
factors on an instance-specific basis by comparing runtimes for
identical random seeds on different machines*.  This module implements
exactly that procedure:

* :func:`calibration_factor` — ratio of reference to local runtime for
  the same (heuristic, instance, seed) workload;
* :class:`CpuNormalizer` — applies per-instance factors (falling back to
  a global factor) to whole record sets.

With no 1999 hardware available, the shipped reference workload defines
a *reference machine* abstraction: any two runs of the benchmark suite
can be normalized to each other, which is all the methodology requires.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.evaluation.records import TrialRecord


def reference_workload(scale: int = 60000) -> float:
    """A deterministic CPU-bound workload; returns its runtime in seconds.

    Pure-Python integer arithmetic: tracks interpreter speed, which is
    what dominates FM inner loops on this substrate.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(scale):
        acc = (acc * 1103515245 + 12345 + i) % (1 << 31)
    if acc < 0:  # pragma: no cover - keeps `acc` observable
        raise AssertionError
    return time.perf_counter() - t0


def calibration_factor(
    local_seconds: float, reference_seconds: float
) -> float:
    """Factor converting local runtimes to reference-machine runtimes.

    ``normalized = local * factor`` where ``factor = reference / local``
    for the identical-seed workload.
    """
    if local_seconds <= 0 or reference_seconds <= 0:
        raise ValueError("runtimes must be positive")
    return reference_seconds / local_seconds


@dataclass
class CpuNormalizer:
    """Normalizes trial runtimes to a reference machine.

    Attributes
    ----------
    global_factor:
        Fallback conversion factor.
    per_instance:
        Instance-specific factors (the paper's footnote-9 refinement:
        cache behaviour makes the machine ratio instance-dependent).
    """

    global_factor: float = 1.0
    per_instance: Dict[str, float] = field(default_factory=dict)

    def factor_for(self, instance: str) -> float:
        """Conversion factor for ``instance``."""
        return self.per_instance.get(instance, self.global_factor)

    def normalize_seconds(self, seconds: float, instance: str = "") -> float:
        """Convert one runtime to reference-machine seconds."""
        return seconds * self.factor_for(instance)

    def normalize(self, records: Sequence[TrialRecord]) -> List[TrialRecord]:
        """Return records with runtimes converted to reference seconds.

        Uses :func:`dataclasses.replace` so every field other than
        ``runtime_seconds`` rides along untouched — fields added to
        :class:`TrialRecord` later cannot be silently dropped here.
        """
        return [
            replace(
                r,
                runtime_seconds=self.normalize_seconds(
                    r.runtime_seconds, r.instance
                ),
            )
            for r in records
        ]

    @staticmethod
    def calibrate(
        run_workload: Callable[[int], float],
        reference_seconds_by_instance: Dict[str, float],
        workload_seed_by_instance: Optional[Dict[str, int]] = None,
    ) -> "CpuNormalizer":
        """Build a normalizer by re-running recorded reference workloads.

        ``reference_seconds_by_instance`` holds the reference machine's
        runtime for each instance's identical-seed calibration run;
        ``run_workload(seed)`` measures the same run locally.
        """
        per_instance: Dict[str, float] = {}
        seeds = workload_seed_by_instance or {}
        for instance, ref_seconds in reference_seconds_by_instance.items():
            local = run_workload(seeds.get(instance, 0))
            per_instance[instance] = calibration_factor(local, ref_seconds)
        global_factor = (
            sum(per_instance.values()) / len(per_instance)
            if per_instance
            else 1.0
        )
        return CpuNormalizer(
            global_factor=global_factor, per_instance=per_instance
        )
