"""Experiment campaigns: declarative spec -> run -> persist -> report.

A *campaign* bundles the paper's whole reporting discipline behind one
object: declare heuristics, instances and start counts; run with
controlled seed streams; persist every trial record; and render a
complete report — traditional min/avg table, per-instance non-dominated
frontier, speed-dependent ranking, and a pairwise significance matrix.

This is the "webpage with the full distributions" the paper says any
flexible presentation medium should contain, reduced to a text artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.multistart import Bipartitioner
from repro.evaluation.bsf import KernelCache
from repro.evaluation.pareto import frontier_from_records
from repro.evaluation.ranking import ranking_diagram
from repro.evaluation.records import TrialRecord, save_records
from repro.evaluation.reporting import ascii_table, summary_by_heuristic
from repro.evaluation.stats_tests import paired_wilcoxon
from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class CampaignSpec:
    """Declarative description of an experiment campaign."""

    name: str
    heuristics: Sequence[Bipartitioner]
    instances: Dict[str, Hypergraph]
    num_starts: int = 10
    base_seed: int = 0
    alpha: float = 0.05  #: significance level for the pairwise matrix

    def __post_init__(self) -> None:
        if self.num_starts < 1:
            raise ValueError("num_starts must be >= 1")
        if not self.heuristics:
            raise ValueError("campaign needs at least one heuristic")
        if not self.instances:
            raise ValueError("campaign needs at least one instance")
        names = [getattr(h, "name", "") for h in self.heuristics]
        if len(set(names)) != len(names):
            raise ValueError("heuristic names must be unique")


@dataclass
class CampaignResult:
    """All trial records of a campaign plus rendering helpers."""

    spec_name: str
    records: List[TrialRecord] = field(default_factory=list)
    alpha: float = 0.05

    # ------------------------------------------------------------------
    def heuristic_names(self) -> List[str]:
        return sorted({r.heuristic for r in self.records})

    def instance_names(self) -> List[str]:
        return sorted({r.instance for r in self.records})

    def significance_matrix(self) -> str:
        """Pairwise Wilcoxon matrix: ``<`` row significantly better,
        ``>`` worse, ``~`` indistinguishable at the campaign's alpha."""
        names = self.heuristic_names()
        rows = []
        for a in names:
            row = [a]
            for b in names:
                if a == b:
                    row.append(".")
                    continue
                try:
                    test = paired_wilcoxon(self.records, a, b, self.alpha)
                except ValueError:
                    row.append("?")
                    continue
                if not test.significant:
                    row.append("~")
                elif test.better == a:
                    row.append("<")
                else:
                    row.append(">")
            rows.append(row)
        return ascii_table([""] + names, rows)

    def report(
        self,
        num_shuffles: int = 100,
        base_seed: int = 0,
        ranking_caches: Optional[Dict[str, KernelCache]] = None,
    ) -> str:
        """Render the complete campaign report.

        The ranking bootstrap derives an independent shuffle stream per
        (heuristic, tau) from ``base_seed`` — the report for a given
        record set and seed is reproducible and per-heuristic stable.
        ``ranking_caches`` (one :class:`KernelCache` per instance,
        created on demand) lets a live report reuse bootstrap kernels
        across refreshes; output is identical with or without it.
        """
        lines = [f"Campaign: {self.spec_name}", "=" * 72, ""]
        lines.append("Traditional multistart table")
        lines.append("-" * 40)
        lines.append(summary_by_heuristic(self.records))

        for inst in self.instance_names():
            inst_records = [r for r in self.records if r.instance == inst]
            lines += ["", f"Non-dominated frontier — {inst}", "-" * 40]
            for p in frontier_from_records(inst_records):
                lines.append(
                    f"  {p.label:32s} cost={p.cost:9.1f}  time={p.time:.4f}s"
                )
            lines += ["", f"Speed-dependent ranking — {inst}", "-" * 40]
            cache = None
            if ranking_caches is not None:
                cache = ranking_caches.setdefault(inst, KernelCache())
            diagram = ranking_diagram(
                inst_records,
                num_shuffles=num_shuffles,
                base_seed=base_seed,
                cache=cache,
            )
            lines.append(diagram.render())

        lines += [
            "",
            f"Pairwise significance (Wilcoxon, alpha={self.alpha:g}; "
            "'<' = row better)",
            "-" * 40,
            self.significance_matrix(),
        ]
        return "\n".join(lines)

    def save(
        self, directory: Union[str, Path], num_shuffles: int = 100
    ) -> Path:
        """Persist records (JSONL) and the rendered report; returns the
        campaign directory.

        ``num_shuffles`` is forwarded to :meth:`report` (and the alpha
        baked into this result is used throughout) so the saved report
        is identical to the interactively rendered one.
        """
        out = Path(directory) / self.spec_name
        out.mkdir(parents=True, exist_ok=True)
        save_records(self.records, out / "records.jsonl")
        (out / "report.txt").write_text(
            self.report(num_shuffles=num_shuffles), encoding="utf-8"
        )
        return out


def run_campaign(
    spec: CampaignSpec,
    fixed_parts: Optional[Dict[str, Sequence[Optional[int]]]] = None,
    *,
    workers: int = 1,
    store_dir: Optional[Union[str, Path]] = None,
    timeout_seconds: Optional[float] = None,
    max_retries: int = 0,
    batch_size: Optional[int] = None,
    sticky_cache: bool = False,
    sticky_pool_size: int = 2,
    use_shared_memory: bool = True,
    inrun_workers: int = 1,
    progress=None,
    resume: bool = False,
) -> CampaignResult:
    """Execute a campaign spec and return its result.

    Execution is routed through :mod:`repro.orchestrate`: pass
    ``workers`` to parallelize across processes (records stay identical
    to a serial run), ``store_dir`` to journal every trial for
    crash-safe ``resume``, and ``timeout_seconds`` / ``max_retries``
    to contain misbehaving trials as error records instead of aborting
    the campaign.  The dispatch knobs (``batch_size``, ``sticky_cache``,
    ``sticky_pool_size``, ``use_shared_memory``, ``inrun_workers``) tune
    the pool's shared-memory instance plane, batched dispatch and in-run
    parallel coarsening without changing any record.  The serial
    in-memory default is exactly the old behavior of
    :func:`repro.evaluation.runner.run_trials`.
    """
    from repro.orchestrate import orchestrate_campaign

    return orchestrate_campaign(
        spec,
        store_dir=store_dir,
        workers=workers,
        timeout_seconds=timeout_seconds,
        max_retries=max_retries,
        batch_size=batch_size,
        sticky_cache=sticky_cache,
        sticky_pool_size=sticky_pool_size,
        use_shared_memory=use_shared_memory,
        inrun_workers=inrun_workers,
        fixed_parts=fixed_parts,
        progress=progress,
        resume=resume,
    )
