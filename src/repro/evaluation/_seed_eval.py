"""Frozen pre-vectorization evaluation bootstrap — the test oracle.

This module preserves, verbatim, the pure-Python implementations of the
Section 3.2 bootstrap machinery (``c_tau_samples``,
``expected_bsf_curve``, ``probability_reaching``) and the quadratic
``non_dominated`` scan exactly as they existed before the vectorized
evaluation engine replaced them.  It exists for the same reason
:mod:`repro.core._seed_engine` and :mod:`repro.multilevel._seed_coarsen`
do: the production kernels in :mod:`repro.evaluation.bsf` /
:mod:`repro.evaluation.pareto` must stay *bit-identical* to this
reference, and the equivalence suite (``tests/test_eval_equivalence.py``)
plus the ``repro bench eval`` microbenchmark enforce that on every run.

The equivalence contract
------------------------
The production kernels take an integer ``seed`` instead of a live
``random.Random``; the contract is::

    kernel(records, ..., seed=s)  ==  oracle(records, ..., rng=random.Random(s))

element for element, float for float.  For multi-tau evaluations the
production engine restarts the shuffle stream from the derived seed at
every tau (common random numbers — see
:func:`repro.evaluation.bsf.eval_seed`), so each tau of a kernel curve
must match a *fresh-RNG single-tau* oracle call, never the old behavior
of threading one RNG across the tau loop (that was the bug this PR
fixes: a tau's value depended on which smaller taus were requested).

:func:`ranking_diagram_oracle` composes the frozen primitives under that
derived-seed contract; it is the reference for the vectorized
:func:`repro.evaluation.ranking.ranking_diagram` and the baseline timed
by ``repro bench eval``.

Do not "improve" this module.  It is a fixture.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.evaluation.records import TrialRecord, group_by


def c_tau_samples(
    records: Sequence[TrialRecord],
    tau: float,
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Frozen bootstrap of ``c_tau`` (best cost achieved within ``tau``).

    Each sample shuffles the recorded starts into a random order and
    plays them until the budget ``tau`` is exhausted.  Orderings in
    which not even the first start finishes within ``tau`` contribute no
    sample.
    """
    if rng is None:
        rng = random.Random(0)
    pool = list(records)
    samples: List[float] = []
    for _ in range(num_shuffles):
        rng.shuffle(pool)
        elapsed = 0.0
        best: Optional[float] = None
        for r in pool:
            elapsed += r.runtime_seconds
            if elapsed > tau:
                break
            if best is None or r.cut < best:
                best = r.cut
        if best is not None:
            samples.append(best)
    return samples


def expected_bsf_curve(
    records: Sequence[TrialRecord],
    taus: Sequence[float],
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> List[Tuple[float, Optional[float]]]:
    """Frozen expected BSF curve: ``[(tau, mean c_tau or None)]``.

    Note the frozen behavior deliberately preserved here: one ``rng``
    advances across the tau loop, so the entry at a given tau depends on
    the taus before it.  The production engine does **not** reproduce
    this coupling — its per-tau entries match single-tau calls of this
    oracle with a fresh RNG (see the module docstring).
    """
    if rng is None:
        rng = random.Random(0)
    curve: List[Tuple[float, Optional[float]]] = []
    for tau in taus:
        samples = c_tau_samples(records, tau, num_shuffles, rng)
        curve.append((tau, sum(samples) / len(samples) if samples else None))
    return curve


def probability_reaching(
    records: Sequence[TrialRecord],
    tau: float,
    target_cost: float,
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> float:
    """Frozen estimate of ``P(c_tau <= target_cost)``.  Orderings with
    undefined c_tau count as failures."""
    if rng is None:
        rng = random.Random(0)
    pool = list(records)
    hits = 0
    for _ in range(num_shuffles):
        rng.shuffle(pool)
        elapsed = 0.0
        reached = False
        for r in pool:
            elapsed += r.runtime_seconds
            if elapsed > tau:
                break
            if r.cut <= target_cost:
                reached = True
                break
        if reached:
            hits += 1
    return hits / num_shuffles


def non_dominated(points: Iterable) -> List:
    """Frozen quadratic non-dominated frontier (paper definition:
    strict inequality on both coordinates), sorted by (time, cost)."""

    def dominates(a, b) -> bool:
        return a.cost < b.cost and a.time < b.time

    pts = list(points)
    frontier = [
        p
        for p in pts
        if not any(dominates(q, p) for q in pts)
    ]
    frontier.sort(key=lambda p: (p.time, p.cost))
    return frontier


def ranking_diagram_oracle(
    records: Sequence[TrialRecord],
    taus: Sequence[float],
    num_shuffles: int = 200,
    base_seed: int = 0,
) -> Dict[str, List[Optional[float]]]:
    """The frozen bootstrap composed under the derived-seed contract.

    For every heuristic and every tau, runs the frozen
    :func:`c_tau_samples` with a *fresh* ``random.Random`` seeded by
    :func:`repro.evaluation.bsf.eval_seed` — the exact semantics the
    vectorized :func:`repro.evaluation.ranking.ranking_diagram` must
    reproduce bit-for-bit.  Returns ``{heuristic: [mean c_tau per tau]}``.
    """
    from repro.evaluation.bsf import eval_seed

    mean_ctau: Dict[str, List[Optional[float]]] = {}
    for (name,), rs in group_by(records, "heuristic").items():
        seed = eval_seed(base_seed, name)
        means: List[Optional[float]] = []
        for tau in taus:
            samples = c_tau_samples(rs, tau, num_shuffles, random.Random(seed))
            means.append(sum(samples) / len(samples) if samples else None)
        mean_ctau[name] = means
    return mean_ctau
