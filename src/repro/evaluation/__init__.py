"""Experimentation and reporting methodology (paper Sections 2.3 & 3.2).

This package is the reproduction of the paper's actual contribution: a
principled way to run and report metaheuristic experiments —

* :func:`run_trials` / :func:`run_configuration_evaluation` — recorded,
  seed-controlled experiment execution;
* :mod:`~repro.evaluation.bsf` — best-so-far curves and c_tau
  distributions (Barr et al.);
* :mod:`~repro.evaluation.pareto` — non-dominated (cost, time) frontiers;
* :mod:`~repro.evaluation.ranking` — speed-dependent ranking diagrams
  (Schreiber-Martin);
* :mod:`~repro.evaluation.stats_tests` — significance testing (Brglez);
* :mod:`~repro.evaluation.cpu_norm` — cross-machine CPU normalization
  (paper footnote 9);
* :mod:`~repro.evaluation.reporting` — the paper's table formats;
* :mod:`~repro.evaluation.scenarios` — k-way and terminal-propagation
  campaign workloads behind the bipartitioner protocol;
* :mod:`~repro.evaluation.streaming` — live reports tailed from a
  running campaign's journal (import the submodule directly; it reaches
  into :mod:`repro.orchestrate` and is kept out of this namespace to
  avoid an import cycle);
* :mod:`~repro.evaluation._seed_eval` — the frozen pure-Python
  bootstrap the vectorized kernels are verified bit-identical against.
"""

from repro.evaluation.bsf import (
    BootstrapKernel,
    BSFPoint,
    KernelCache,
    bsf_trajectory,
    c_tau_samples,
    default_tau_grid,
    eval_seed,
    expected_bsf_curve,
    probability_reaching,
    shuffle_matrix,
)
from repro.evaluation.campaign import (
    CampaignResult,
    CampaignSpec,
    run_campaign,
)
from repro.evaluation.cpu_norm import (
    CpuNormalizer,
    calibration_factor,
    reference_workload,
)
from repro.evaluation.pareto import (
    PerfPoint,
    best_for_budget,
    dominates,
    frontier_from_records,
    non_dominated,
)
from repro.evaluation.ranking import RankingDiagram, ranking_diagram
from repro.evaluation.records import (
    TrialRecord,
    avg_cut,
    avg_runtime,
    group_by,
    load_records,
    min_cut,
    save_records,
)
from repro.evaluation.reporting import (
    ascii_table,
    comparison_table,
    configuration_table,
    cut_time_cell,
    min_avg_cell,
    summary_by_heuristic,
    table1_grid,
)
from repro.evaluation.runner import (
    configuration_seed,
    run_configuration_evaluation,
    run_trials,
)
from repro.evaluation.scenarios import (
    Scenario,
    ScenarioHeuristic,
    ScenarioResult,
    balance_for,
    kway_axes,
)
from repro.evaluation.stats_tests import (
    ComparisonResult,
    mann_whitney,
    paired_wilcoxon,
    permutation_test,
)

__all__ = [
    "BSFPoint",
    "BootstrapKernel",
    "CampaignResult",
    "CampaignSpec",
    "ComparisonResult",
    "CpuNormalizer",
    "KernelCache",
    "PerfPoint",
    "RankingDiagram",
    "Scenario",
    "ScenarioHeuristic",
    "ScenarioResult",
    "TrialRecord",
    "ascii_table",
    "balance_for",
    "avg_cut",
    "avg_runtime",
    "best_for_budget",
    "bsf_trajectory",
    "c_tau_samples",
    "calibration_factor",
    "comparison_table",
    "configuration_seed",
    "configuration_table",
    "cut_time_cell",
    "default_tau_grid",
    "dominates",
    "eval_seed",
    "expected_bsf_curve",
    "frontier_from_records",
    "group_by",
    "kway_axes",
    "load_records",
    "mann_whitney",
    "min_avg_cell",
    "min_cut",
    "non_dominated",
    "paired_wilcoxon",
    "permutation_test",
    "probability_reaching",
    "ranking_diagram",
    "reference_workload",
    "run_campaign",
    "run_configuration_evaluation",
    "run_trials",
    "save_records",
    "shuffle_matrix",
    "summary_by_heuristic",
    "table1_grid",
]
