"""Experiment runner: heuristics x instances x independent starts.

Ensures "apples to apples" comparisons (Section 2.3): every heuristic
sees the same instances and the same seed stream, and all trials are
recorded individually so any reporting style can be derived later.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.multistart import Bipartitioner
from repro.evaluation.records import TrialRecord
from repro.hypergraph.hypergraph import Hypergraph


def run_trials(
    partitioners: Iterable[Bipartitioner],
    instances: Dict[str, Hypergraph],
    num_starts: int,
    base_seed: int = 0,
    fixed_parts: Optional[Dict[str, Sequence[Optional[int]]]] = None,
) -> List[TrialRecord]:
    """Run ``num_starts`` independent starts of every heuristic on every
    instance; return the flat list of per-trial records.

    Start ``i`` of every heuristic on a given instance uses seed
    ``base_seed + i`` so heuristics face identical randomness.
    """
    if num_starts < 1:
        raise ValueError("num_starts must be >= 1")
    records: List[TrialRecord] = []
    for instance_name, hypergraph in instances.items():
        fp = fixed_parts.get(instance_name) if fixed_parts else None
        for partitioner in partitioners:
            name = getattr(partitioner, "name", type(partitioner).__name__)
            for i in range(num_starts):
                seed = base_seed + i
                t0 = time.perf_counter()
                result = partitioner.partition(
                    hypergraph, seed=seed, fixed_parts=fp
                )
                elapsed = time.perf_counter() - t0
                records.append(
                    TrialRecord(
                        heuristic=name,
                        instance=instance_name,
                        seed=seed,
                        cut=result.cut,
                        runtime_seconds=elapsed,
                        legal=result.legal,
                    )
                )
    return records


#: Seed-block stride between configurations of
#: :func:`run_configuration_evaluation`.  Each configuration ``s``
#: draws seeds from its own block ``[base_seed + s * stride, ...)``, so
#: a configuration's results never depend on which other configurations
#: ran before it.  One repetition consumes ``s + 1`` seeds (``s``
#: starts plus one V-cycle seed), so the stride bounds
#: ``repetitions * (s + 1)`` — a million covers any realistic protocol.
CONFIGURATION_SEED_STRIDE = 1_000_000


def configuration_seed(
    base_seed: int, num_starts: int, repetition: int, start: int
) -> int:
    """Seed for start ``start`` of repetition ``repetition`` in the
    ``num_starts``-start configuration.  ``start == num_starts`` is the
    V-cycle seed of that repetition.  Pure function of its arguments —
    this is what makes each configuration independently reproducible.
    """
    return (
        base_seed
        + num_starts * CONFIGURATION_SEED_STRIDE
        + repetition * (num_starts + 1)
        + start
    )


def run_configuration_evaluation(
    make_partitioner,
    hypergraph: Hypergraph,
    instance_name: str,
    start_counts: Sequence[int],
    repetitions: int,
    base_seed: int = 0,
    vcycle=None,
) -> Dict[int, Dict[str, float]]:
    """The paper's hMetis-1.5 evaluation protocol (Tables 4-5).

    For each configuration (= number of independent starts ``s`` in
    ``start_counts``), execute the whole multistart bundle
    ``repetitions`` times; each bundle keeps its best result and, when
    ``vcycle`` is given, applies ``vcycle(hypergraph, best_assignment,
    seed)`` to it (shmetis V-cycles the best of its starts).  Returns
    ``{s: {"avg_best_cut": ..., "avg_cpu_seconds": ...}}`` — the
    ``cut/time`` cells of Tables 4 and 5.

    Seeding is explicit per configuration: every configuration ``s``
    draws from its own seed block via :func:`configuration_seed`, so
    running ``start_counts=[8]`` reproduces exactly the ``s=8`` cells
    of a ``start_counts=[1, 2, 4, 8]`` run — results are independent of
    the configuration list's order and contents.
    """
    out: Dict[int, Dict[str, float]] = {}
    for s in start_counts:
        best_cuts: List[float] = []
        cpu_times: List[float] = []
        for rep in range(repetitions):
            t0 = time.perf_counter()
            best_cut = float("inf")
            best_assignment = None
            for i in range(s):
                partitioner = make_partitioner()
                seed = configuration_seed(base_seed, s, rep, i)
                result = partitioner.partition(hypergraph, seed=seed)
                if result.cut < best_cut:
                    best_cut = result.cut
                    best_assignment = result.assignment
            if vcycle is not None and best_assignment is not None:
                vseed = configuration_seed(base_seed, s, rep, s)
                improved = vcycle(hypergraph, best_assignment, vseed)
                if improved.cut < best_cut:
                    best_cut = improved.cut
            cpu_times.append(time.perf_counter() - t0)
            best_cuts.append(best_cut)
        out[s] = {
            "avg_best_cut": sum(best_cuts) / len(best_cuts),
            "avg_cpu_seconds": sum(cpu_times) / len(cpu_times),
            "instance": instance_name,
        }
    return out
