"""Paper-style table formatting.

Renders the exact reporting shapes of the paper from trial records:

* Table 1 grid — rows (updates, bias), columns instances, cells
  ``min/avg``;
* Tables 2-3 — rows (tolerance, algorithm), cells ``min/avg``;
* Tables 4-5 — rows instances, columns configurations, cells
  ``avg_cut/avg_cpu``.

These are deliberately plain ASCII tables: the paper's point is the
*content* discipline (all data collected, tradeoffs visible), not the
typesetting.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.evaluation.records import TrialRecord, avg_cut, group_by, min_cut


def ascii_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Right-aligned ASCII table with a separator under the header."""
    cols = len(header)
    for r in rows:
        if len(r) != cols:
            raise ValueError("row length mismatch")
    widths = [
        max(len(str(header[c])), *(len(str(r[c])) for r in rows))
        if rows
        else len(str(header[c]))
        for c in range(cols)
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep] + [fmt(r) for r in rows])


def min_avg_cell(records: Sequence[TrialRecord]) -> str:
    """The paper's ``min/avg`` cell (e.g. ``333/639``)."""
    return f"{min_cut(records):g}/{avg_cut(records):.0f}"


def cut_time_cell(avg_best_cut: float, avg_cpu_seconds: float) -> str:
    """The Tables 4-5 cell format ``avg_cut/avg_time``."""
    return f"{avg_best_cut:.1f}/{avg_cpu_seconds:.1f}"


def table1_grid(
    records: Sequence[TrialRecord],
    engines: Sequence[str],
    variants: Sequence[tuple],
    instances: Sequence[str],
) -> str:
    """Render a Table 1-style grid.

    ``variants`` is a list of (updates_label, bias_label); a record
    belongs to row ``(engine, updates, bias)`` when its heuristic name
    equals ``f"{engine} {updates} {bias}"`` (the naming convention used
    by the Table 1 bench).
    """
    blocks: List[str] = []
    by_name = group_by(records, "heuristic", "instance")
    for engine in engines:
        rows = []
        for updates, bias in variants:
            name = f"{engine} {updates} {bias}"
            row = [updates, bias]
            for inst in instances:
                rs = by_name.get((name, inst))
                row.append(min_avg_cell(rs) if rs else "-")
            rows.append(row)
        blocks.append(
            f"{engine}\n"
            + ascii_table(["Updates", "Bias"] + list(instances), rows)
        )
    return "\n\n".join(blocks)


def comparison_table(
    records: Sequence[TrialRecord],
    row_labels: Mapping[str, str],
    instances: Sequence[str],
) -> str:
    """Render a Tables 2/3-style comparison.

    ``row_labels`` maps heuristic names (as recorded) to display labels,
    in row order.
    """
    by_name = group_by(records, "heuristic", "instance")
    rows = []
    for name, label in row_labels.items():
        row = [label]
        for inst in instances:
            rs = by_name.get((name, inst))
            row.append(min_avg_cell(rs) if rs else "-")
        rows.append(row)
    return ascii_table(["Algorithm"] + list(instances), rows)


def configuration_table(
    results: Mapping[str, Mapping[int, Mapping[str, float]]],
    start_counts: Sequence[int],
) -> str:
    """Render a Tables 4/5-style configuration table.

    ``results[instance][num_starts]`` must hold ``avg_best_cut`` and
    ``avg_cpu_seconds`` (the output of
    :func:`repro.evaluation.runner.run_configuration_evaluation`).
    """
    header = ["Circuit"] + [f"cfg {s}" for s in start_counts]
    rows = []
    for instance, per_cfg in results.items():
        row = [instance]
        for s in start_counts:
            cell = per_cfg.get(s)
            row.append(
                cut_time_cell(cell["avg_best_cut"], cell["avg_cpu_seconds"])
                if cell
                else "-"
            )
        rows.append(row)
    return ascii_table(header, rows)


def summary_by_heuristic(records: Sequence[TrialRecord]) -> str:
    """Quick ``heuristic x instance -> min/avg (avg s)`` overview table."""
    keys = group_by(records, "heuristic", "instance")
    rows = []
    for (heuristic, instance), rs in sorted(keys.items()):
        avg_t = sum(r.runtime_seconds for r in rs) / len(rs)
        rows.append(
            [heuristic, instance, min_avg_cell(rs), f"{avg_t:.2f}s", str(len(rs))]
        )
    return ascii_table(
        ["Heuristic", "Instance", "min/avg cut", "avg time", "starts"], rows
    )
