"""Streaming evaluation: live reports from a campaign still being run.

PR 1's orchestrator journals every trial to a crash-safe
:class:`~repro.orchestrate.store.RunStore` the moment it resolves — the
per-trial records a Section 3.2 report needs are on disk for the whole
campaign, not just at the end.  This module derives the report *while
the journal grows*:

* :class:`JournalTail` — an incremental reader that consumes only
  complete journal lines (a torn final line — the classic crash/mid-write
  artifact — is left unconsumed until its newline lands, the reader-side
  analogue of the store's torn-tail healing) and deduplicates by trial
  index with last-occurrence-wins, exactly like
  :meth:`RunStore.outcomes`;
* :class:`ReportBuilder` — tails a store and re-derives the full
  campaign report (traditional table, BSF-backed speed-dependent
  ranking, Pareto frontier, significance matrix) from whatever records
  have landed, reusing vectorized bootstrap kernels across refreshes via
  per-instance :class:`~repro.evaluation.bsf.KernelCache` objects so a
  refresh only re-bootstraps heuristics whose record pools actually
  grew;
* :func:`follow_report` — the ``repro campaign report --follow`` loop.

Because the tailer's dedup/skip semantics mirror the batch reader's,
a live report rendered after the final trial lands is byte-identical to
the post-hoc ``repro campaign report`` of the finished journal.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional, TextIO

from repro.evaluation.bsf import KernelCache
from repro.evaluation.campaign import CampaignResult
from repro.evaluation.records import TrialRecord
from repro.orchestrate.store import RunStore, TrialOutcome, parse_journal_line


class JournalTail:
    """Incremental, torn-tail-safe reader of a ``RunStore`` journal.

    Maintains a byte offset into ``journal.jsonl``; every :meth:`poll`
    reads the newly appended bytes and absorbs the complete lines among
    them.  Bytes after the last newline are *not* consumed — a writer
    may still be mid-append — so a torn tail is re-examined on the next
    poll instead of being misparsed.  (If a crash leaves the torn line
    permanently unterminated, the store's own healing turns it into a
    complete-but-corrupt line on the next writer append, and it is then
    skipped here exactly as :meth:`RunStore.outcomes` skips it.)
    """

    def __init__(self, store: RunStore):
        self.store = store
        self._offset = 0
        self._by_trial: Dict[int, TrialOutcome] = {}

    @property
    def offset(self) -> int:
        """Bytes of the journal consumed so far."""
        return self._offset

    def poll(self) -> int:
        """Absorb newly appended complete lines; return how many parsed
        outcomes were absorbed (including replacements of duplicate
        trial indices — last occurrence wins, as in the batch reader).

        If the journal *shrank* below the stored offset (truncation or
        rotation — e.g. an operator rotating a long-running service's
        journal, or a test rewriting it), the tail restarts from byte 0
        and re-deduplicates the whole file instead of silently reading
        nothing forever from a stale offset."""
        path = self.store.journal_path
        if not path.exists():
            return 0
        if path.stat().st_size < self._offset:
            self._offset = 0
            self._by_trial.clear()
        with open(path, "rb") as f:
            f.seek(self._offset)
            chunk = f.read()
        end = chunk.rfind(b"\n")
        if end < 0:
            return 0  # nothing new, or only a torn tail so far
        complete, self._offset = chunk[: end + 1], self._offset + end + 1
        absorbed = 0
        for raw in complete.splitlines():
            outcome = parse_journal_line(raw.decode("ascii", "replace"))
            if outcome is None:
                continue
            self._by_trial[outcome.trial] = outcome
            absorbed += 1
        return absorbed

    def outcomes(self) -> List[TrialOutcome]:
        """Absorbed outcomes, deduplicated, sorted by trial index —
        the streaming view of :meth:`RunStore.outcomes`."""
        return [self._by_trial[k] for k in sorted(self._by_trial)]

    def records(self) -> List[TrialRecord]:
        """Successful absorbed trials as reporting-stack records, in
        canonical (plan index) order."""
        return [o.to_record() for o in self.outcomes() if o.ok]


class ReportBuilder:
    """Incrementally re-derives a campaign report from a live journal.

    ``render()`` after any number of ``refresh()`` calls returns exactly
    what ``CampaignResult(...).report(...)`` over the same journaled
    records returns — partial mid-campaign, and byte-identical to the
    post-hoc report once every trial has landed.
    """

    def __init__(
        self,
        store: RunStore,
        num_shuffles: int = 100,
        base_seed: int = 0,
        alpha: Optional[float] = None,
    ):
        self.store = store
        self.tail = JournalTail(store)
        self.num_shuffles = num_shuffles
        self.base_seed = base_seed
        meta = store.load_meta()
        self.name = str(meta.get("name", store.directory.name))
        self.total = int(meta.get("total_trials", 0))
        self.alpha = float(meta.get("alpha", 0.05) if alpha is None else alpha)
        # One bootstrap-kernel cache per instance, reused across
        # refreshes; only heuristics with new records rebuild kernels.
        self._caches: Dict[str, KernelCache] = {}

    # ------------------------------------------------------------------
    def refresh(self) -> int:
        """Absorb newly journaled outcomes; returns how many arrived."""
        return self.tail.poll()

    @property
    def done(self) -> int:
        """Distinct trials journaled so far."""
        return len(self.tail.outcomes())

    def complete(self) -> bool:
        """True once every planned trial has a journaled outcome."""
        return self.total > 0 and self.done >= self.total

    def records(self) -> List[TrialRecord]:
        return self.tail.records()

    def result(self) -> CampaignResult:
        """The records absorbed so far as a :class:`CampaignResult`."""
        return CampaignResult(
            spec_name=self.name, records=self.records(), alpha=self.alpha
        )

    def status_line(self) -> str:
        """One-line progress summary for interactive display."""
        outcomes = self.tail.outcomes()
        ok = sum(1 for o in outcomes if o.ok)
        return (
            f"[live] {self.name}: {len(outcomes)}/{self.total} trials "
            f"journaled ({ok} ok, {len(outcomes) - ok} errors)"
        )

    def render(self) -> str:
        """The full Section 3.2 report over the records absorbed so far."""
        return self.result().report(
            num_shuffles=self.num_shuffles,
            base_seed=self.base_seed,
            ranking_caches=self._caches,
        )


def follow_report(
    builder: ReportBuilder,
    interval: float = 2.0,
    stream: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
    max_polls: Optional[int] = None,
) -> str:
    """Tail a live campaign: re-render whenever new outcomes land, until
    the journal holds every planned trial (or ``max_polls`` polls pass).

    Status lines go to ``stream`` (default stderr); the final report
    text is returned, not printed, so callers control where it lands.
    """
    if stream is None:
        stream = sys.stderr
    polls = 0
    dirty = True
    while True:
        if builder.refresh():
            dirty = True
        if dirty:
            print(builder.status_line(), file=stream, flush=True)
            dirty = False
        polls += 1
        if builder.complete():
            break
        if max_polls is not None and polls >= max_polls:
            break
        sleep(interval)
    return builder.render()
