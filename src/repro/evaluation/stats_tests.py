"""Statistical significance of heuristic comparisons.

Brglez (cited in Section 3.2) points out that VLSI CAD papers routinely
claim improvements that are indistinguishable from randomization noise.
These helpers answer "is heuristic A actually better than B on this
data?" with standard tests:

* Wilcoxon signed-rank for paired per-seed comparisons (same instance,
  same seed stream — the design :func:`repro.evaluation.runner.run_trials`
  guarantees);
* Mann-Whitney U for unpaired cut distributions;
* a permutation test on mean difference (no distributional assumptions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import scipy.stats

from repro.evaluation.records import TrialRecord


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a two-heuristic significance comparison."""

    heuristic_a: str
    heuristic_b: str
    mean_a: float
    mean_b: float
    p_value: float
    test: str
    significant: bool  #: at the requested alpha

    @property
    def better(self) -> Optional[str]:
        """The significantly better (lower mean cut) heuristic, if any."""
        if not self.significant:
            return None
        return self.heuristic_a if self.mean_a < self.mean_b else self.heuristic_b


def _cuts_by_heuristic(
    records: Sequence[TrialRecord], a: str, b: str
) -> Tuple[List[TrialRecord], List[TrialRecord]]:
    ra = [r for r in records if r.heuristic == a]
    rb = [r for r in records if r.heuristic == b]
    if not ra or not rb:
        raise ValueError(f"records missing for {a!r} or {b!r}")
    return ra, rb


def paired_wilcoxon(
    records: Sequence[TrialRecord],
    heuristic_a: str,
    heuristic_b: str,
    alpha: float = 0.05,
) -> ComparisonResult:
    """Wilcoxon signed-rank test on per-seed paired cuts.

    Requires both heuristics to have been run with the same seed stream
    on the same instance (pairs are matched on ``(instance, seed)``).
    """
    ra, rb = _cuts_by_heuristic(records, heuristic_a, heuristic_b)
    by_key_a: Dict[tuple, float] = {(r.instance, r.seed): r.cut for r in ra}
    by_key_b: Dict[tuple, float] = {(r.instance, r.seed): r.cut for r in rb}
    keys = sorted(set(by_key_a) & set(by_key_b))
    if len(keys) < 5:
        raise ValueError("need at least 5 matched pairs for Wilcoxon")
    xs = [by_key_a[k] for k in keys]
    ys = [by_key_b[k] for k in keys]
    diffs = [x - y for x, y in zip(xs, ys)]
    if all(d == 0 for d in diffs):
        p_value = 1.0
    else:
        p_value = float(scipy.stats.wilcoxon(xs, ys).pvalue)
    return ComparisonResult(
        heuristic_a=heuristic_a,
        heuristic_b=heuristic_b,
        mean_a=sum(xs) / len(xs),
        mean_b=sum(ys) / len(ys),
        p_value=p_value,
        test="wilcoxon-signed-rank",
        significant=p_value < alpha,
    )


def mann_whitney(
    records: Sequence[TrialRecord],
    heuristic_a: str,
    heuristic_b: str,
    alpha: float = 0.05,
) -> ComparisonResult:
    """Mann-Whitney U test on the two unpaired cut distributions."""
    ra, rb = _cuts_by_heuristic(records, heuristic_a, heuristic_b)
    xs = [r.cut for r in ra]
    ys = [r.cut for r in rb]
    p_value = float(scipy.stats.mannwhitneyu(xs, ys).pvalue)
    return ComparisonResult(
        heuristic_a=heuristic_a,
        heuristic_b=heuristic_b,
        mean_a=sum(xs) / len(xs),
        mean_b=sum(ys) / len(ys),
        p_value=p_value,
        test="mann-whitney-u",
        significant=p_value < alpha,
    )


def permutation_test(
    records: Sequence[TrialRecord],
    heuristic_a: str,
    heuristic_b: str,
    alpha: float = 0.05,
    num_permutations: int = 2000,
    rng: Optional[random.Random] = None,
) -> ComparisonResult:
    """Two-sided permutation test on the difference of mean cuts."""
    if rng is None:
        rng = random.Random(0)
    ra, rb = _cuts_by_heuristic(records, heuristic_a, heuristic_b)
    xs = [r.cut for r in ra]
    ys = [r.cut for r in rb]
    observed = abs(sum(xs) / len(xs) - sum(ys) / len(ys))
    pooled = xs + ys
    n_a = len(xs)
    extreme = 0
    for _ in range(num_permutations):
        rng.shuffle(pooled)
        pa = pooled[:n_a]
        pb = pooled[n_a:]
        stat = abs(sum(pa) / len(pa) - sum(pb) / len(pb))
        if stat >= observed - 1e-12:
            extreme += 1
    p_value = (extreme + 1) / (num_permutations + 1)
    return ComparisonResult(
        heuristic_a=heuristic_a,
        heuristic_b=heuristic_b,
        mean_a=sum(xs) / len(xs),
        mean_b=sum(ys) / len(ys),
        p_value=p_value,
        test="permutation",
        significant=p_value < alpha,
    )
