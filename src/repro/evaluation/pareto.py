"""Non-dominated (cost, runtime) frontiers — Section 3.2's Pareto view.

The paper: performance point A is *dominated* by B iff B has both lower
cost and lower runtime ("no one would ever choose to run configuration A
over configuration B"); the non-dominated frontier of points from
multiple heuristics shows which heuristic is preferable in each runtime
regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.evaluation.records import TrialRecord, avg_cut, avg_runtime, group_by


@dataclass(frozen=True)
class PerfPoint:
    """One (solution cost, runtime) performance point with provenance."""

    cost: float
    time: float
    label: str = ""


def dominates(a: PerfPoint, b: PerfPoint) -> bool:
    """True iff ``a`` strictly dominates ``b`` (paper definition:
    strictly lower cost AND strictly lower runtime)."""
    return a.cost < b.cost and a.time < b.time


def non_dominated(points: Iterable[PerfPoint]) -> List[PerfPoint]:
    """The non-dominated frontier, sorted by increasing runtime.

    Points dominated by no other point survive.  Duplicate-coordinate
    points all survive (none strictly dominates another), matching the
    paper's strict-inequality definition.

    Sort-and-sweep, O(n log n): after a stable sort by (time, cost),
    only points with *strictly* smaller time can dominate, so one pass
    tracking the best cost among strictly-earlier time groups decides
    every point.  Output is identical — element for element, ties in
    original input order — to the quadratic scan it replaced (frozen in
    :mod:`repro.evaluation._seed_eval`).
    """
    pts = sorted(points, key=lambda p: (p.time, p.cost))
    frontier: List[PerfPoint] = []
    best_cost_before = float("inf")  # best cost at strictly smaller time
    i = 0
    while i < len(pts):
        j = i
        while j < len(pts) and pts[j].time == pts[i].time:
            j += 1
        group_best = best_cost_before
        for p in pts[i:j]:
            # Strict-inequality dominance: survive unless someone
            # strictly earlier is strictly cheaper.
            if not best_cost_before < p.cost:
                frontier.append(p)
            if p.cost < group_best:
                group_best = p.cost
        best_cost_before = group_best
        i = j
    return frontier


def frontier_from_records(
    records: Sequence[TrialRecord],
    by: str = "heuristic",
) -> List[PerfPoint]:
    """Aggregate records into per-group (avg cut, avg runtime) points and
    return the non-dominated frontier.

    ``by`` may be any TrialRecord field (typically ``"heuristic"``);
    each group becomes one performance point labelled with its key.
    """
    points = [
        PerfPoint(cost=avg_cut(rs), time=avg_runtime(rs), label=str(key[0]))
        for key, rs in group_by(records, by).items()
    ]
    return non_dominated(points)


def best_for_budget(
    frontier: Sequence[PerfPoint], budget: float
) -> PerfPoint:
    """Cheapest-cost frontier point whose runtime fits within ``budget``.

    Raises ``ValueError`` when nothing on the frontier fits (the reader
    of a frontier diagram would conclude "no heuristic can run in this
    regime").
    """
    feasible = [p for p in frontier if p.time <= budget]
    if not feasible:
        raise ValueError(f"no frontier point fits budget {budget}")
    return min(feasible, key=lambda p: (p.cost, p.time))
