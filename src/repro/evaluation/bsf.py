"""Best-so-far (BSF) curves and c_tau distributions (Section 3.2).

Barr et al. describe the BSF curve — expected best solution cost within
a CPU-time budget tau under a multistart regime — as the most popular
principled reporting style for metaheuristics.  Schreiber & Martin build
speed-dependent rankings on the distribution of ``c_tau``, the best cost
achieved within time tau.

Given per-start :class:`TrialRecord` data, this module computes:

* the *sequential* BSF trajectory (starts in recorded order), and
* the *expected* BSF curve and c_tau distributions over random
  re-orderings of the starts (a bootstrap over the multistart regime).

The time axis is actual CPU seconds, never "number of starts" — the
paper is explicit that advanced metaheuristics (pruning, V-cycling) make
start counts incomparable across heuristics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.evaluation.records import TrialRecord


@dataclass(frozen=True)
class BSFPoint:
    """One step of a best-so-far trajectory."""

    time: float  #: cumulative CPU seconds
    cost: float  #: best cut achieved by then


def bsf_trajectory(records: Sequence[TrialRecord]) -> List[BSFPoint]:
    """Sequential BSF trajectory of ``records`` in the given order.

    Point ``k`` is (total CPU after start k, best cut among the first k
    starts).  Raises ``ValueError`` on empty input.
    """
    if not records:
        raise ValueError("no records")
    points: List[BSFPoint] = []
    elapsed = 0.0
    best = float("inf")
    for r in records:
        elapsed += r.runtime_seconds
        if r.cut < best:
            best = r.cut
        points.append(BSFPoint(time=elapsed, cost=best))
    return points


def c_tau_samples(
    records: Sequence[TrialRecord],
    tau: float,
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Bootstrap samples of ``c_tau`` (best cost achieved within ``tau``).

    Each sample shuffles the recorded starts into a random order and
    plays them until the budget ``tau`` is exhausted.  Orderings in
    which not even the first start finishes within ``tau`` contribute no
    sample (c_tau is undefined there — the heuristic simply cannot run
    in that regime, which the ranking machinery reports as such).
    """
    if rng is None:
        rng = random.Random(0)
    pool = list(records)
    samples: List[float] = []
    for _ in range(num_shuffles):
        rng.shuffle(pool)
        elapsed = 0.0
        best: Optional[float] = None
        for r in pool:
            elapsed += r.runtime_seconds
            if elapsed > tau:
                break
            if best is None or r.cut < best:
                best = r.cut
        if best is not None:
            samples.append(best)
    return samples


def expected_bsf_curve(
    records: Sequence[TrialRecord],
    taus: Sequence[float],
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> List[Tuple[float, Optional[float]]]:
    """Expected BSF curve: ``[(tau, mean c_tau or None)]``.

    ``None`` marks budgets too small for the heuristic to complete any
    start in any sampled ordering.
    """
    if rng is None:
        rng = random.Random(0)
    curve: List[Tuple[float, Optional[float]]] = []
    for tau in taus:
        samples = c_tau_samples(records, tau, num_shuffles, rng)
        curve.append((tau, sum(samples) / len(samples) if samples else None))
    return curve


def probability_reaching(
    records: Sequence[TrialRecord],
    tau: float,
    target_cost: float,
    num_shuffles: int = 200,
    rng: Optional[random.Random] = None,
) -> float:
    """Estimate ``P(c_tau <= target_cost)`` — the Schreiber-Martin
    "probability that c_tau = C0" ranking statistic, generalized to a
    threshold.  Orderings with undefined c_tau count as failures.
    """
    if rng is None:
        rng = random.Random(0)
    pool = list(records)
    hits = 0
    for _ in range(num_shuffles):
        rng.shuffle(pool)
        elapsed = 0.0
        reached = False
        for r in pool:
            elapsed += r.runtime_seconds
            if elapsed > tau:
                break
            if r.cut <= target_cost:
                reached = True
                break
        if reached:
            hits += 1
    return hits / num_shuffles


def default_tau_grid(
    records: Sequence[TrialRecord], points: int = 12
) -> List[float]:
    """A geometric grid of budgets from the fastest single start to the
    total recorded CPU, suitable as the x-axis of a BSF comparison.

    ``points=1`` degenerates to the single most informative budget —
    the total recorded CPU (the grid's endpoint); fewer than one point
    is a caller error.
    """
    if not records:
        raise ValueError("no records")
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    fastest = min(r.runtime_seconds for r in records)
    total = sum(r.runtime_seconds for r in records)
    fastest = max(fastest, 1e-9)
    if points == 1:
        return [max(total, fastest)]
    # Nudge total above fastest so the geometric ratio is well-defined
    # even when a single record makes the span degenerate.
    total = max(total, fastest * 1.0001)
    ratio = (total / fastest) ** (1.0 / (points - 1))
    return [fastest * ratio**i for i in range(points)]
