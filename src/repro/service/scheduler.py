"""Fair-share trial scheduler: many campaigns, one worker fleet.

The campaign executor (:mod:`repro.orchestrate.executor`) supervises one
campaign's trials on a dedicated pool.  The service needs the inverse
shape: one long-lived fleet of multi-tenant workers, onto which trial
*batches from many concurrent jobs* are interleaved.  This module keeps
every contract the executor established and adds the multi-tenancy:

* **Same trial semantics** — workers run each trial through the same
  :class:`~repro.orchestrate.executor.TrialExecutor` (one per job per
  worker, rebuilt from the job's once-pickled payload), so a trial
  computes bit-for-bit what a standalone campaign run computes.  Sticky
  hierarchy caches stay keyed on the trial's start index, never on
  worker identity, so fair-share interleaving cannot perturb records.
* **Deficit round-robin fair share** — each runnable job carries a
  deficit replenished by its ``priority`` once all runnable deficits
  are spent; dispatch walks the submission rotation and serves the
  first job with deficit, clamping batch size to the remaining deficit.
  Starvation bound: in every replenish cycle each runnable job is
  dispatched at least ``priority`` trials before any other job is
  replenished again — a priority-1 job always progresses.
* **Per-job robustness** — per-trial hard timeouts, bounded retries and
  the forfeit rule (a killed worker charges only its in-flight batch
  head; the rest requeue unpenalized) are enforced per job, with each
  job's own policy.
* **Crash-safe journaling** — every outcome is appended + fsynced to
  the job's own :class:`~repro.orchestrate.store.RunStore` the moment
  it resolves, so a service kill loses at most the in-flight trials —
  which were never journaled and simply rerun after restart.

Threading model: all scheduler state is owned by one supervisor thread;
other threads communicate through a command queue (submit / pause /
resume / cancel / stop).  Job counter fields are plain ints updated only
by the supervisor, safe to *read* from other threads for status.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.orchestrate import executor as _exec
from repro.orchestrate.executor import (
    BatchSizer,
    PendingTrial,
    error_outcome,
    executor_from_payload,
    ok_outcome,
    pool_context,
)
from repro.orchestrate.plan import TrialPlan
from repro.orchestrate.store import RunStore, TrialOutcome

JOB_ACTIVE = "active"
JOB_PAUSED = "paused"
JOB_DONE = "done"
JOB_CANCELLED = "cancelled"

#: Supervisor wait bound while any worker is busy (mirrors the campaign
#: executor's liveness bound) and idle tick while the fleet is drained.
_BUSY_WAIT_SECONDS = _exec.LIVENESS_SECONDS
_IDLE_WAIT_SECONDS = 0.2


# ----------------------------------------------------------------------
def _fleet_worker_main(task_q, result_q):
    """Multi-tenant worker loop.

    Message protocol (all tuples, first element is the kind):

    * ``("job", job_id, payload_blob)`` — (re)register a job context; the
      worker builds that job's :class:`TrialExecutor` lazily on first
      batch so registration is cheap.
    * ``("batch", job_id, [(index, heuristic, instance, seed, start)])``
      — run the trials in order, streaming one result per trial as
      ``(job_id, index, "ok"|"error", payload, perf)``.
    * ``("drop", job_id)`` — close and forget the job's executor (its
      sticky caches and attached instances).
    * ``None`` — exit.

    Job contexts are isolated: each job gets its own executor, so two
    jobs labeling different netlists with the same instance name can
    never cross wires, and sticky hierarchy pools never leak between
    tenants.
    """
    import os

    blobs: Dict[str, bytes] = {}
    executors: Dict[str, object] = {}
    parent = os.getppid()
    try:
        while True:
            try:
                msg = task_q.get(timeout=_exec.ORPHAN_POLL_SECONDS)
            except queue.Empty:
                if os.getppid() != parent:
                    return  # supervisor is gone; don't orphan
                continue
            if msg is None:
                return
            kind = msg[0]
            if kind == "job":
                blobs[msg[1]] = msg[2]
            elif kind == "drop":
                blobs.pop(msg[1], None)
                executor = executors.pop(msg[1], None)
                if executor is not None:
                    executor.close()
            elif kind == "batch":
                _, job_id, batch = msg
                executor = executors.get(job_id)
                if executor is None:
                    blob = blobs.get(job_id)
                    if blob is None:  # defensive: batch before context
                        for index, *_rest in batch:
                            result_q.put(
                                (job_id, index, "error",
                                 "worker received batch before job context",
                                 None)
                            )
                        continue
                    executor = executor_from_payload(blob)
                    executors[job_id] = executor
                for index, heuristic, instance, seed, start in batch:
                    plan = TrialPlan(
                        index=index,
                        heuristic=heuristic,
                        instance=instance,
                        seed=seed,
                        start=start,
                    )
                    try:
                        payload, perf = executor.run(plan)
                        result_q.put((job_id, index, "ok", payload, perf))
                    except Exception:
                        result_q.put(
                            (job_id, index, "error",
                             traceback.format_exc(limit=8), None)
                        )
    finally:
        for executor in executors.values():
            executor.close()


class _FleetWorker:
    """One fleet worker plus the supervisor's view of its state: which
    job contexts it has been sent, and the in-flight batch (all from a
    single job — batches are never mixed across tenants)."""

    def __init__(self, ctx, result_q):
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_fleet_worker_main,
            args=(self.task_q, result_q),
            daemon=True,
        )
        self.process.start()
        self.loaded: Set[str] = set()
        self.batch: Deque[PendingTrial] = deque()
        self.batch_job: Optional[str] = None
        self.started_at = 0.0

    @property
    def busy(self) -> bool:
        return bool(self.batch)

    def load_job(self, job_id: str, payload_blob: bytes) -> None:
        if job_id not in self.loaded:
            self.task_q.put(("job", job_id, payload_blob))
            self.loaded.add(job_id)

    def drop_job(self, job_id: str) -> None:
        if job_id in self.loaded:
            try:
                self.task_q.put(("drop", job_id))
            except (ValueError, OSError):  # queue already closed
                pass
            self.loaded.discard(job_id)

    def assign(self, job_id: str, items: List[PendingTrial]) -> None:
        assert not self.batch
        self.batch.extend(items)
        self.batch_job = job_id
        self.started_at = time.monotonic()
        self.task_q.put(
            (
                "batch",
                job_id,
                [
                    (p.plan.index, p.plan.heuristic, p.plan.instance,
                     p.plan.seed, p.plan.start)
                    for p in items
                ],
            )
        )

    def pop_result(self, index: int) -> Optional[PendingTrial]:
        """Remove the batch entry whose result arrived (normally the
        head) and re-arm the per-trial timeout clock."""
        if not self.batch:
            return None
        if self.batch[0].plan.index == index:
            item = self.batch.popleft()
        else:  # defensive: out-of-order result from a replaced worker
            item = None
            for candidate in self.batch:
                if candidate.plan.index == index:
                    item = candidate
                    break
            if item is None:
                return None
            self.batch.remove(item)
        self.started_at = time.monotonic()
        if not self.batch:
            self.batch_job = None
        return item

    def shutdown(self) -> None:
        try:
            self.task_q.put(None)
        except (ValueError, OSError):
            pass
        self.process.join(timeout=_exec.JOIN_SECONDS)
        if self.process.is_alive():
            self.terminate()

    def terminate(self) -> None:
        self.process.terminate()
        self.process.join(timeout=_exec.JOIN_SECONDS)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=_exec.JOIN_SECONDS)


# ----------------------------------------------------------------------
@dataclass
class ServiceJob:
    """Scheduler-side state of one tenant campaign."""

    job_id: str
    store: RunStore
    total: int
    payload_blob: bytes
    pending: Deque[PendingTrial]
    priority: int = 1
    timeout_seconds: Optional[float] = None
    max_retries: int = 0
    batch_size: Optional[int] = None
    status: str = JOB_ACTIVE
    done: int = 0
    ok: int = 0
    errors: int = 0
    best: Dict[str, float] = field(default_factory=dict)
    #: Called (supervisor thread) after each journaled outcome.
    on_outcome: Optional[Callable[["ServiceJob", TrialOutcome], None]] = None
    #: Called (supervisor thread) exactly once on done/cancelled.
    on_finish: Optional[Callable[["ServiceJob"], None]] = None
    deficit: float = 0.0
    sizer: BatchSizer = field(init=False)
    inflight: int = 0

    def __post_init__(self) -> None:
        self.sizer = BatchSizer(self.batch_size)

    @property
    def finished(self) -> bool:
        return self.status in (JOB_DONE, JOB_CANCELLED)

    def progress(self) -> Dict[str, object]:
        """Thread-safe-enough snapshot for status endpoints."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "total": self.total,
            "done": self.done,
            "ok": self.ok,
            "errors": self.errors,
            "pending": len(self.pending),
            "priority": self.priority,
            "best": dict(self.best),
        }


class FairShareScheduler:
    """Deficit-round-robin supervisor for one multi-tenant fleet."""

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.num_workers = workers
        self._cmd: "queue.Queue[Tuple]" = queue.Queue()
        self._jobs: Dict[str, ServiceJob] = {}
        self._order: List[str] = []  #: submission rotation for DRR
        self._rr = 0
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._stopped = threading.Event()

    # -- control surface (any thread) -----------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-scheduler", daemon=True
        )
        self._thread.start()

    def submit(self, job: ServiceJob) -> None:
        self._cmd.put(("submit", job))

    def pause(self, job_id: str) -> None:
        self._cmd.put(("pause", job_id))

    def resume(self, job_id: str) -> None:
        self._cmd.put(("resume", job_id))

    def cancel(self, job_id: str) -> None:
        self._cmd.put(("cancel", job_id))

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the fleet *now* (kill semantics).  In-flight trials are
        lost un-journaled — exactly the crash the journal is designed
        for: a restart reruns only those."""
        if self._thread is None:
            return
        self._cmd.put(("stop",))
        self._stopped.wait(timeout)
        self._thread.join(timeout)
        self._thread = None

    def job(self, job_id: str) -> Optional[ServiceJob]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[ServiceJob]:
        return [self._jobs[j] for j in self._order]

    # -- supervisor loop -------------------------------------------------
    def _loop(self) -> None:
        ctx = pool_context()
        result_q = ctx.Queue()
        fleet: List[_FleetWorker] = []
        #: (job_id, trial index) -> worker currently holding it.
        inflight: Dict[Tuple[str, int], _FleetWorker] = {}

        def spawn() -> _FleetWorker:
            w = _FleetWorker(ctx, result_q)
            fleet.append(w)
            return w

        for _ in range(self.num_workers):
            spawn()

        # -- per-outcome bookkeeping ------------------------------------
        def resolve(job: ServiceJob, outcome: TrialOutcome) -> None:
            job.store.append(outcome)
            job.done += 1
            if outcome.ok:
                job.ok += 1
                inst = outcome.instance
                if inst not in job.best or outcome.cut < job.best[inst]:
                    job.best[inst] = outcome.cut
            else:
                job.errors += 1
            if job.on_outcome is not None:
                job.on_outcome(job, outcome)
            if job.done >= job.total:
                finish(job, JOB_DONE)

        def fail(job: ServiceJob, item: PendingTrial, message: str) -> None:
            item.attempts += 1
            if item.attempts <= job.max_retries:
                job.pending.append(item)
            else:
                resolve(job, error_outcome(item, message))

        def finish(job: ServiceJob, status: str) -> None:
            if job.finished:
                return
            job.status = status
            job.pending.clear()
            for w in fleet:
                w.drop_job(job.job_id)
            if job.on_finish is not None:
                job.on_finish(job)

        def forfeit(w: _FleetWorker, message: str) -> None:
            """Kill ``w``; charge its batch head to its job, requeue the
            rest at the front of that job's pending queue."""
            job_id = w.batch_job
            head = w.batch.popleft()
            rest = list(w.batch)
            w.batch.clear()
            w.batch_job = None
            inflight.pop((job_id, head.plan.index), None)
            for item in rest:
                inflight.pop((job_id, item.plan.index), None)
            fleet.remove(w)
            w.terminate()
            job = self._jobs.get(job_id)
            if job is not None and not job.finished:
                job.inflight -= 1 + len(rest)
                fail(job, head, message)
                job.pending.extendleft(reversed(rest))
            spawn()

        # -- commands ----------------------------------------------------
        def handle(cmd: Tuple) -> None:
            kind = cmd[0]
            if kind == "stop":
                self._stopping = True
            elif kind == "submit":
                job: ServiceJob = cmd[1]
                self._jobs[job.job_id] = job
                self._order.append(job.job_id)
                if not job.pending and job.done >= job.total:
                    finish(job, JOB_DONE)
            elif kind == "pause":
                job = self._jobs.get(cmd[1])
                if job is not None and job.status == JOB_ACTIVE:
                    job.status = JOB_PAUSED
            elif kind == "resume":
                job = self._jobs.get(cmd[1])
                if job is not None and job.status == JOB_PAUSED:
                    job.status = JOB_ACTIVE
            elif kind == "cancel":
                job = self._jobs.get(cmd[1])
                if job is None or job.finished:
                    return
                # Reclaim workers mid-batch on this job: cancellation
                # must not wait for a long trial to finish.
                for w in list(fleet):
                    if w.batch_job == job.job_id:
                        for item in w.batch:
                            inflight.pop(
                                (job.job_id, item.plan.index), None
                            )
                        w.batch.clear()
                        w.batch_job = None
                        fleet.remove(w)
                        w.terminate()
                        spawn()
                job.inflight = 0
                finish(job, JOB_CANCELLED)

        # -- fair-share dispatch ----------------------------------------
        def runnable() -> List[ServiceJob]:
            return [
                self._jobs[j]
                for j in self._order
                if self._jobs[j].status == JOB_ACTIVE
                and self._jobs[j].pending
            ]

        def pick_job() -> Optional[ServiceJob]:
            ready = runnable()
            if not ready:
                return None
            if all(job.deficit < 1 for job in ready):
                for job in ready:
                    job.deficit += job.priority
            n = len(self._order)
            for k in range(n):
                jid = self._order[(self._rr + k) % n]
                job = self._jobs[jid]
                if (
                    job.status == JOB_ACTIVE
                    and job.pending
                    and job.deficit >= 1
                ):
                    self._rr = (self._rr + k + 1) % n
                    return job
            return None

        def dispatch() -> None:
            for w in fleet:
                if w.busy or not w.process.is_alive():
                    continue
                job = pick_job()
                if job is None:
                    break
                size = job.sizer.next_size(
                    len(job.pending), len(fleet)
                )
                size = max(1, min(size, int(job.deficit), len(job.pending)))
                items = [job.pending.popleft() for _ in range(size)]
                job.deficit -= size
                job.inflight += size
                w.load_job(job.job_id, job.payload_blob)
                w.assign(job.job_id, items)
                for item in items:
                    inflight[(job.job_id, item.plan.index)] = w

        # -- waits -------------------------------------------------------
        def drain_timeout(now: float) -> float:
            wait = _BUSY_WAIT_SECONDS
            for w in fleet:
                if not w.busy:
                    continue
                job = self._jobs.get(w.batch_job)
                if job is None or job.timeout_seconds is None:
                    continue
                remaining = w.started_at + job.timeout_seconds - now
                if remaining < wait:
                    wait = remaining
            return max(wait, 0.0)

        # -- main loop ---------------------------------------------------
        try:
            while True:
                while True:  # absorb all queued commands
                    try:
                        handle(self._cmd.get_nowait())
                    except queue.Empty:
                        break
                if self._stopping:
                    break

                dispatch()

                any_busy = any(w.busy for w in fleet)
                if any_busy:
                    # Block on results, bounded by the nearest per-trial
                    # deadline (and the liveness cap).
                    messages = []
                    wait = drain_timeout(time.monotonic())
                    try:
                        if wait > 0:
                            messages.append(result_q.get(timeout=wait))
                        else:
                            messages.append(result_q.get_nowait())
                        while True:
                            messages.append(result_q.get_nowait())
                    except queue.Empty:
                        pass
                    for job_id, index, status, payload, perf in messages:
                        w = inflight.pop((job_id, index), None)
                        if w is None:
                            continue  # stale: terminated worker's result
                        item = w.pop_result(index)
                        if item is None:  # pragma: no cover - defensive
                            continue
                        job = self._jobs.get(job_id)
                        if job is None or job.finished:
                            continue
                        job.inflight -= 1
                        if status == "ok":
                            job.sizer.observe(payload[1])
                            resolve(job, ok_outcome(item, payload))
                        else:
                            fail(job, item, payload)
                else:
                    # Idle fleet: wait for the next command instead of
                    # spinning on the result queue.
                    try:
                        handle(self._cmd.get(timeout=_IDLE_WAIT_SECONDS))
                    except queue.Empty:
                        pass
                    if self._stopping:
                        break

                # Deadlines and dead workers.
                now = time.monotonic()
                for w in list(fleet):
                    if not w.busy:
                        if not w.process.is_alive():
                            fleet.remove(w)
                            spawn()
                        continue
                    job = self._jobs.get(w.batch_job)
                    timeout = job.timeout_seconds if job else None
                    if (
                        timeout is not None
                        and now - w.started_at > timeout
                    ):
                        forfeit(
                            w,
                            f"trial exceeded wall-clock timeout of "
                            f"{timeout:g}s",
                        )
                    elif not w.process.is_alive():
                        forfeit(
                            w,
                            f"worker process died "
                            f"(exitcode {w.process.exitcode})",
                        )
        finally:
            for w in fleet:
                w.shutdown()
            self._stopped.set()
