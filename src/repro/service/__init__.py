"""Campaign service: persistent multi-tenant partitioning-as-a-service.

The one-shot CLI of :mod:`repro.orchestrate` runs a single campaign and
exits.  This package promotes it to a *long-running plane* that
supervises many concurrent campaigns on one shared worker fleet:

* :mod:`~repro.service.spec` — JSON-serializable job specifications
  (:class:`JobSpec`, :class:`InstanceSource`): what to run, declared in
  data so jobs survive the process that submitted them;
* :mod:`~repro.service.cache` — :class:`InstanceCache`, a cross-campaign
  LRU of :func:`~repro.hypergraph.shm.share_hypergraph` segments keyed
  by instance fingerprint, leased per job and unlinked refcount-safely;
* :mod:`~repro.service.scheduler` — :class:`FairShareScheduler`, a
  deficit-round-robin trial scheduler interleaving batches from many
  jobs onto one multi-tenant worker fleet, preserving every per-job
  determinism/timeout/retry contract of the campaign executor;
* :mod:`~repro.service.streams` — live status / BSF / report
  subscriptions backed by the incremental
  :class:`~repro.evaluation.streaming.JournalTail` readers;
* :mod:`~repro.service.server` — :class:`CampaignService` (the
  supervisor: submit/status/pause/resume/cancel, crash recovery) and
  :class:`ServiceHTTP` (the asyncio HTTP/JSON frontend);
* :mod:`~repro.service.client` — :class:`ServiceClient`, the HTTP
  client the ``repro job`` CLI drives.

Determinism contract: each job's journal depends only on its own spec
(per-trial seeds come from the plan; sticky caches key on start index),
so any fair-share interleaving yields the same records as running that
campaign alone.
"""

from repro.service.cache import InstanceCache
from repro.service.client import ServiceClient
from repro.service.scheduler import (
    JOB_ACTIVE,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_PAUSED,
    FairShareScheduler,
    ServiceJob,
)
from repro.service.server import CampaignService, ServiceHTTP
from repro.service.spec import ENGINE_NAMES, InstanceSource, JobSpec
from repro.service.streams import SubscriptionHub, subscribe_job

__all__ = [
    "CampaignService",
    "ENGINE_NAMES",
    "FairShareScheduler",
    "InstanceCache",
    "InstanceSource",
    "JOB_ACTIVE",
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_PAUSED",
    "JobSpec",
    "ServiceClient",
    "ServiceHTTP",
    "ServiceJob",
    "SubscriptionHub",
    "subscribe_job",
]
