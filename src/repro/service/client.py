"""Same-process (and same-host) client for the campaign service.

A thin, dependency-free wrapper over :mod:`http.client` speaking the
:class:`~repro.service.server.ServiceHTTP` JSON protocol.  Control
calls open one short-lived connection each; :meth:`watch` holds its own
connection open and yields the NDJSON stream's events as dicts until
the server sends the ``end`` sentinel.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional, Union
from urllib.parse import urlsplit

from repro.service.spec import JobSpec


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"service returned {status}: {message}")
        self.status = status


class ServiceClient:
    """Client for one campaign service endpoint (default local port)."""

    def __init__(self, url: str = "http://127.0.0.1:8337", timeout: float = 30.0):
        split = urlsplit(url)
        if split.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in {url!r}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 8337
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(data).get("error", data)
                except json.JSONDecodeError:
                    message = data
                raise ServiceError(response.status, message)
            return json.loads(data) if data else {}
        finally:
            conn.close()

    # -- control plane ---------------------------------------------------
    def health(self) -> Dict:
        return self._request("GET", "/health")

    def submit(self, spec: Union[JobSpec, Dict]) -> str:
        """Submit a job (a :class:`JobSpec` or its JSON form); returns
        the assigned job id."""
        payload = spec.to_json() if isinstance(spec, JobSpec) else spec
        return str(self._request("POST", "/jobs", payload)["job_id"])

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def list(self) -> List[Dict]:
        return list(self._request("GET", "/jobs")["jobs"])

    def cancel(self, job_id: str) -> None:
        self._request("POST", f"/jobs/{job_id}/cancel")

    def pause(self, job_id: str) -> None:
        self._request("POST", f"/jobs/{job_id}/pause")

    def resume(self, job_id: str) -> None:
        self._request("POST", f"/jobs/{job_id}/resume")

    # -- streaming -------------------------------------------------------
    def watch(
        self, job_id: str, kind: str = "status", timeout: Optional[float] = None
    ) -> Iterator[Dict]:
        """Follow a job's live event stream (``status`` / ``bsf`` /
        ``report``) until the terminal ``end`` event (inclusive)."""
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/stream?kind={kind}")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read().decode("utf-8")
                try:
                    message = json.loads(data).get("error", data)
                except json.JSONDecodeError:
                    message = data
                raise ServiceError(response.status, message)
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def wait(self, job_id: str) -> Dict:
        """Block until the job finishes; returns its final status."""
        for event in self.watch(job_id, kind="status"):
            if event.get("event") == "end":
                break
        return self.status(job_id)
