"""Cross-campaign instance cache: shared-memory segments that outlive jobs.

Under the one-shot orchestrator, each campaign shares its instances into
shared memory at start and unlinks them at exit — correct, but a service
racing many campaigns over the same benchmark suite would re-load and
re-export identical netlists for every submission.  :class:`InstanceCache`
keeps loaded hypergraphs *and* their shared-memory handles alive across
jobs, keyed by the instance source's canonical fingerprint
(:meth:`~repro.service.spec.InstanceSource.cache_key`):

* **lease/release** — a job leases every instance it uses for its whole
  lifetime; leased entries are pinned (never evicted), so a worker can
  always attach the segment mid-job;
* **LRU eviction** — beyond ``capacity`` entries, the least recently
  *leased* unpinned entries are evicted and their segments unlinked;
* **refcount-safe unlink** — eviction and :meth:`close` go through the
  idempotent :func:`~repro.hypergraph.shm.unlink_handle`, so a segment
  is destroyed exactly once no matter how many jobs released it, and a
  double release is a hard error rather than a silent refcount leak.

Thread-safe: the server thread submits jobs (lease) while the scheduler
thread finishes them (release).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.shm import ShmHandle, share_hypergraph, unlink_handle
from repro.service.spec import InstanceSource


@dataclass
class CacheEntry:
    """One cached instance: the loaded hypergraph, its (possibly
    fallback) shared-memory handle, and the live lease count."""

    key: str
    hypergraph: Hypergraph
    handle: ShmHandle
    leases: int = 0

    @property
    def pinned(self) -> bool:
        return self.leases > 0


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0


class InstanceCache:
    """LRU cache of loaded + shared instances, leased per job."""

    def __init__(
        self, capacity: int = 8, use_shared_memory: bool = True
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.use_shared_memory = use_shared_memory
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._closed = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def lease(self, source: InstanceSource) -> CacheEntry:
        """The cached entry for ``source``, loading and sharing it on a
        miss; the entry is pinned until a matching :meth:`release`."""
        key = source.cache_key()
        with self._lock:
            if self._closed:
                raise RuntimeError("instance cache is closed")
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                entry.leases += 1
                self._entries.move_to_end(key)
                return entry
        # Load outside the lock: file IO / generation may be slow and
        # must not stall releases from the scheduler thread.
        hypergraph = source.load()
        if self.use_shared_memory:
            handle = share_hypergraph(hypergraph)
        else:
            handle = ShmHandle(segment=None, fallback=hypergraph)
        with self._lock:
            racing = self._entries.get(key)
            if racing is not None:  # another thread loaded it first
                self.stats.hits += 1
                racing.leases += 1
                self._entries.move_to_end(key)
                doomed: Optional[ShmHandle] = handle
            else:
                self.stats.misses += 1
                entry = CacheEntry(
                    key=key, hypergraph=hypergraph, handle=handle, leases=1
                )
                self._entries[key] = entry
                self._evict_over_capacity()
                doomed = None
        if doomed is not None:
            unlink_handle(doomed)
        return racing if racing is not None else entry

    def release(self, entry: CacheEntry) -> None:
        """Drop one lease; over-capacity unpinned entries may now go."""
        with self._lock:
            held = self._entries.get(entry.key)
            if held is not entry or entry.leases <= 0:
                raise ValueError(
                    f"release of {entry.key!r} without a matching lease"
                )
            entry.leases -= 1
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Evict LRU-first among unpinned entries (lock held)."""
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            entry = self._entries[key]
            if entry.pinned:
                continue
            del self._entries[key]
            self.stats.evictions += 1
            unlink_handle(entry.handle)

    def close(self) -> None:
        """Unlink every cached segment (service shutdown).  Idempotent;
        relies on :func:`unlink_handle` being safe to call exactly once
        per segment even if jobs raced their releases."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            unlink_handle(entry.handle)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Introspection for ``/health``: per-entry lease/pin state."""
        with self._lock:
            return {
                entry.key: {
                    "leases": entry.leases,
                    "shared": entry.handle.is_shared,
                    "vertices": entry.hypergraph.num_vertices,
                }
                for entry in self._entries.values()
            }
