"""The campaign service supervisor and its HTTP/JSON frontend.

:class:`CampaignService` owns the long-lived pieces — one
:class:`~repro.service.scheduler.FairShareScheduler` fleet, one
:class:`~repro.service.cache.InstanceCache`, one
:class:`~repro.service.streams.SubscriptionHub` — and a directory of
per-job state::

    <dir>/jobs/<job_id>/job.json        # spec + lifecycle status
    <dir>/jobs/<job_id>/meta.json       # RunStore metadata (as always)
    <dir>/jobs/<job_id>/journal.jsonl   # crash-safe trial journal
    <dir>/jobs/<job_id>/report.txt      # final report, written on done

Everything durable lives in files the one-shot ``repro campaign``
tooling already understands: a service job's directory *is* a valid
campaign store, so ``repro campaign status/report`` work on it
unchanged, and the determinism acceptance check — service journal
record-identical to a standalone run — is a plain file comparison.

Crash recovery (:meth:`CampaignService.recover`, run at startup) rereads
``job.json`` for every non-finished job, re-leases its instances and
resubmits only the trials missing from the journal.  Since every
outcome was fsynced before being counted, a killed service restarts
with zero rerun of journaled trials.

:class:`ServiceHTTP` is a deliberately small asyncio HTTP/1.1 server
(stdlib only) running in its own thread: JSON request/response for the
control plane, newline-delimited JSON for the live subscription
streams.
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.evaluation.streaming import ReportBuilder
from repro.orchestrate.executor import build_payload, PendingTrial
from repro.orchestrate.orchestrator import build_meta
from repro.orchestrate.plan import expand_spec, spec_fingerprint
from repro.orchestrate.store import RunStore
from repro.service.cache import CacheEntry, InstanceCache
from repro.service.scheduler import (
    JOB_ACTIVE,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_PAUSED,
    FairShareScheduler,
    ServiceJob,
)
from repro.service.spec import JobSpec
from repro.service.streams import SubscriptionHub, subscribe_job

from collections import deque


class _JobRecord:
    """Service-side bookkeeping for one job (the scheduler owns the
    :class:`ServiceJob`; this holds what the scheduler must not know
    about — spec, directory, cache leases)."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        store: RunStore,
        directory: Path,
        leases: List[CacheEntry],
        job: ServiceJob,
    ):
        self.job_id = job_id
        self.spec = spec
        self.store = store
        self.directory = directory
        self.leases = leases
        self.job = job


class CampaignService:
    """Supervisor for many concurrent campaigns on one worker fleet."""

    def __init__(
        self,
        directory,
        workers: int = 2,
        cache_capacity: int = 8,
        use_shared_memory: bool = True,
    ):
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache = InstanceCache(
            capacity=cache_capacity, use_shared_memory=use_shared_memory
        )
        self.hub = SubscriptionHub()
        self.scheduler = FairShareScheduler(workers=workers)
        self.scheduler.start()
        self._lock = threading.Lock()
        self._records: Dict[str, _JobRecord] = {}
        self._seq = self._next_seq()
        self._closed = False

    # -- job identity ----------------------------------------------------
    def _next_seq(self) -> int:
        seq = 0
        for child in self.jobs_dir.iterdir():
            name = child.name
            if name.startswith("j") and "-" in name:
                head = name[1:].split("-", 1)[0]
                if head.isdigit():
                    seq = max(seq, int(head))
        return seq + 1

    def _job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    @staticmethod
    def _job_json_path(directory: Path) -> Path:
        return directory / "job.json"

    def _persist_job(self, record: _JobRecord) -> None:
        payload = {
            "job_id": record.job_id,
            "status": record.job.status,
            "spec": record.spec.to_json(),
        }
        path = self._job_json_path(record.directory)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        tmp.replace(path)

    # -- submission ------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Register a job and start scheduling its trials; returns the
        job id.  The job directory is a complete, standalone campaign
        store from the first journaled trial on."""
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            job_id = f"j{self._seq:03d}-{spec.name}"
            self._seq += 1
        record = self._register_job(job_id, spec, fresh=True)
        return record.job_id

    def _register_job(
        self, job_id: str, spec: JobSpec, fresh: bool
    ) -> _JobRecord:
        """Lease instances, reconcile the store with its journal, and
        hand the remaining trials to the scheduler.  Shared by
        :meth:`submit` (``fresh=True``) and :meth:`recover`."""
        directory = self._job_dir(job_id)
        leases: List[CacheEntry] = []
        try:
            instances: Dict[str, object] = {}
            for source in spec.instances:
                entry = self.cache.lease(source)
                leases.append(entry)
                instances[source.label] = entry.hypergraph
            campaign = spec.campaign_spec(instances)
            plan = expand_spec(campaign)
            store = RunStore(directory)
            if store.exists():
                meta = store.load_meta()
                if meta.get("spec_hash") != spec_fingerprint(campaign):
                    raise ValueError(
                        f"job {job_id}: existing store does not match "
                        "the submitted spec"
                    )
            else:
                store.initialize(
                    build_meta(
                        campaign,
                        total_trials=len(plan),
                        cli={"service_spec": spec.to_json()},
                    )
                )
            completed = store.completed_trials()
            pending = deque(
                PendingTrial(p) for p in plan if p.index not in completed
            )
            outcomes = store.outcomes()
            heuristics = {
                getattr(h, "name", type(h).__name__): h
                for h in campaign.heuristics
            }
            handles = {
                src.label: entry.handle
                for src, entry in zip(spec.instances, leases)
            }
            # Fair-share clamp at dispatch time: the whole fleet is this
            # job's trial-worker budget, so fleet x inrun never exceeds
            # the fleet.  (Fleet workers are daemonic, so the executor
            # clamps to the serial path anyway — bit-identical either
            # way; the clamp keeps the declared intent honest.)
            from repro.multilevel.parallel import clamp_inrun_workers

            fleet = self.scheduler.num_workers
            payload_blob = build_payload(
                heuristics,
                handles,
                sticky_cache=spec.sticky_cache,
                sticky_pool_size=spec.sticky_pool_size,
                inrun_workers=clamp_inrun_workers(
                    spec.inrun_workers, trial_workers=fleet, fleet=fleet
                ),
                backend=spec.backend,
            )
            job = ServiceJob(
                job_id=job_id,
                store=store,
                total=len(plan),
                payload_blob=payload_blob,
                pending=pending,
                priority=spec.priority,
                timeout_seconds=spec.timeout_seconds,
                max_retries=spec.max_retries,
                on_outcome=self._on_outcome,
                on_finish=self._on_finish,
            )
            for o in outcomes:  # resume: journal already holds these
                job.done += 1
                if o.ok:
                    job.ok += 1
                    if (
                        o.instance not in job.best
                        or o.cut < job.best[o.instance]
                    ):
                        job.best[o.instance] = o.cut
                else:
                    job.errors += 1
        except Exception:
            for entry in leases:
                self.cache.release(entry)
            raise
        record = _JobRecord(job_id, spec, store, directory, leases, job)
        with self._lock:
            self._records[job_id] = record
        if fresh:
            self._persist_job(record)
        self.scheduler.submit(job)
        return record

    # -- scheduler callbacks (supervisor thread) -------------------------
    def _on_outcome(self, job: ServiceJob, outcome) -> None:
        self.hub.notify(job.job_id)

    def _on_finish(self, job: ServiceJob) -> None:
        record = self._records.get(job.job_id)
        if record is None:  # pragma: no cover - defensive
            self.hub.finish(job.job_id)
            return
        if job.status == JOB_DONE:
            builder = ReportBuilder(
                record.store, num_shuffles=record.spec.num_shuffles
            )
            builder.refresh()
            (record.directory / "report.txt").write_text(
                builder.render(), encoding="utf-8"
            )
        self._persist_job(record)
        for entry in record.leases:
            self.cache.release(entry)
        record.leases = []
        self.hub.finish(job.job_id)

    # -- recovery --------------------------------------------------------
    def recover(self) -> List[str]:
        """Resubmit every job that was active or paused when the service
        last stopped.  Journaled trials are never rerun; a job whose
        journal already covers the plan finalizes immediately (report +
        status flip) without touching the fleet."""
        recovered: List[str] = []
        for child in sorted(self.jobs_dir.iterdir()):
            path = self._job_json_path(child)
            if not path.is_file():
                continue
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("status") not in (JOB_ACTIVE, JOB_PAUSED):
                continue
            job_id = str(data["job_id"])
            spec = JobSpec.from_json(data["spec"])
            record = self._register_job(job_id, spec, fresh=False)
            if data.get("status") == JOB_PAUSED:
                self.scheduler.pause(job_id)
                record.job.status = JOB_PAUSED  # reflect before snapshot
            recovered.append(job_id)
        return recovered

    # -- control plane ---------------------------------------------------
    def _record(self, job_id: str) -> _JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise KeyError(f"unknown job {job_id!r}")
        return record

    def status(self, job_id: str) -> Dict[str, object]:
        record = self._record(job_id)
        out = record.job.progress()
        out["name"] = record.spec.name
        out["directory"] = str(record.directory)
        report = record.directory / "report.txt"
        if report.exists():
            out["report_path"] = str(report)
        return out

    def list_jobs(self) -> List[Dict[str, object]]:
        with self._lock:
            ids = list(self._records)
        return [self.status(job_id) for job_id in ids]

    def cancel(self, job_id: str) -> None:
        self._record(job_id)
        self.scheduler.cancel(job_id)

    def pause(self, job_id: str) -> None:
        self._record(job_id)
        self.scheduler.pause(job_id)

    def resume_job(self, job_id: str) -> None:
        self._record(job_id)
        self.scheduler.resume(job_id)

    def subscribe(
        self, job_id: str, kind: str = "status", **kwargs
    ) -> Iterator[Dict[str, object]]:
        record = self._record(job_id)
        kwargs.setdefault("num_shuffles", record.spec.num_shuffles)
        return subscribe_job(
            record.store,
            self.hub,
            job_id,
            kind=kind,
            total=record.job.total,
            **kwargs,
        )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> str:
        """Block until the job finishes; returns its final status."""
        record = self._record(job_id)
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        seen = -1
        while not self.hub.finished(job_id):
            if deadline is not None and _time.monotonic() >= deadline:
                break
            seen = self.hub.wait(job_id, seen, timeout=0.2)
        return record.job.status

    def health(self) -> Dict[str, object]:
        with self._lock:
            ids = list(self._records)
        return {
            "jobs": len(ids),
            "active": sum(
                1
                for j in ids
                if self._records[j].job.status == JOB_ACTIVE
            ),
            "workers": self.scheduler.num_workers,
            "cache": self.cache.snapshot(),
        }

    def close(self) -> None:
        """Stop the fleet and unlink cached segments.  Running jobs stay
        ``active`` in ``job.json`` — exactly what :meth:`recover` picks
        up on the next start."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.scheduler.stop()
        self.cache.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
class ServiceHTTP:
    """Minimal asyncio HTTP/1.1 frontend for a :class:`CampaignService`.

    Routes::

        GET  /health                     service + cache snapshot
        GET  /jobs                       all jobs' status
        POST /jobs                       submit a JobSpec (JSON body)
        GET  /jobs/<id>                  one job's status
        POST /jobs/<id>/cancel           (also pause / resume)
        GET  /jobs/<id>/stream?kind=...  NDJSON live subscription

    The event loop runs in a dedicated thread; blocking service calls
    (and each subscription generator's next()) are pushed to the default
    executor so one slow stream never stalls the control plane.
    """

    def __init__(
        self, service: CampaignService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("HTTP frontend already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("HTTP frontend failed to start")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            self._server = await asyncio.start_server(
                self._handle, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._ready.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        loop, self._loop = self._loop, None
        if loop is None:
            return

        async def teardown():
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            loop.stop()

        asyncio.run_coroutine_threadsafe(teardown(), loop)
        self._thread.join(timeout=10)
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            request = await reader.readline()
            if not request:
                return
            try:
                method, target, _version = (
                    request.decode("latin-1").strip().split(" ", 2)
                )
            except ValueError:
                await self._respond(writer, 400, {"error": "bad request"})
                return
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length) if length else b""
            await self._route(writer, method, target, body)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _route(self, writer, method: str, target: str, body: bytes):
        split = urlsplit(target)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        loop = asyncio.get_running_loop()
        try:
            if method == "GET" and parts == ["health"]:
                await self._respond(writer, 200, self.service.health())
            elif method == "GET" and parts == ["jobs"]:
                data = await loop.run_in_executor(
                    None, self.service.list_jobs
                )
                await self._respond(writer, 200, {"jobs": data})
            elif method == "POST" and parts == ["jobs"]:
                try:
                    spec = JobSpec.from_json(
                        json.loads(body.decode("utf-8"))
                    )
                except (KeyError, TypeError) as exc:
                    # Missing/mistyped spec fields are client errors,
                    # not unknown resources.
                    await self._respond(
                        writer, 400, {"error": f"bad spec: {exc}"}
                    )
                    return
                job_id = await loop.run_in_executor(
                    None, self.service.submit, spec
                )
                await self._respond(writer, 200, {"job_id": job_id})
            elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
                data = await loop.run_in_executor(
                    None, self.service.status, parts[1]
                )
                await self._respond(writer, 200, data)
            elif (
                method == "POST"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] in ("cancel", "pause", "resume")
            ):
                action = {
                    "cancel": self.service.cancel,
                    "pause": self.service.pause,
                    "resume": self.service.resume_job,
                }[parts[2]]
                await loop.run_in_executor(None, action, parts[1])
                await self._respond(writer, 200, {"ok": True})
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "stream"
            ):
                kind = query.get("kind", ["status"])[0]
                await self._stream(writer, parts[1], kind)
            else:
                await self._respond(writer, 404, {"error": "not found"})
        except KeyError as exc:
            await self._respond(writer, 404, {"error": str(exc)})
        except (ValueError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})

    async def _respond(self, writer, status: int, payload: Dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "OK"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()

    async def _stream(self, writer, job_id: str, kind: str) -> None:
        loop = asyncio.get_running_loop()
        try:
            events = self.service.subscribe(job_id, kind=kind)
        except (KeyError, ValueError) as exc:
            code = 404 if isinstance(exc, KeyError) else 400
            await self._respond(writer, code, {"error": str(exc)})
            return
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        sentinel = object()
        while True:
            event = await loop.run_in_executor(
                None, next, events, sentinel
            )
            if event is sentinel:
                break
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()
