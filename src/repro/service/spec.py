"""Job specifications: declarative, JSON-serializable campaign requests.

A :class:`~repro.evaluation.campaign.CampaignSpec` holds live Python
objects (hypergraphs, partitioner instances) — fine for a library call,
useless for a service where jobs arrive over HTTP, outlive the process
that submitted them, and must be reconstructible after a server restart.
:class:`JobSpec` is the data-only form: instances are declared as
*sources* (a file on disk, a synthetic-suite entry, a generator call),
heuristics as engine names from the CLI ladder, and every execution knob
as a plain field.  ``JobSpec.from_json(spec.to_json())`` round-trips
exactly, and building the same JobSpec twice yields campaigns with
identical trial plans — the property the service's resume-after-restart
path rests on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.evaluation.campaign import CampaignSpec

#: Engine ladder names accepted in ``JobSpec.engines`` — the same names
#: ``repro partition --engine`` takes, built by the same factory, so a
#: service job computes exactly what the standalone CLI computes.  The
#: canonical tuple lives next to the scenario layer, which shares the
#: vocabulary for its inner bipartitioners.
from repro.evaluation.scenarios import (
    ENGINE_NAMES,
    Scenario,
    ScenarioHeuristic,
)
from repro.hypergraph.hypergraph import Hypergraph


def make_engine(engine: str, tolerance: float):
    """Build one ladder engine (delegates to the CLI factory so service
    jobs and ``repro campaign run`` construct identical partitioners)."""
    from repro.cli import _make_engine

    return _make_engine(engine, tolerance)


@dataclass(frozen=True)
class InstanceSource:
    """Where one campaign instance comes from.

    ``kind`` selects the loader:

    * ``"file"`` — ``path`` (hMetis ``.hgr`` or ISPD98 ``.netD`` with
      optional ``are``);
    * ``"suite"`` — synthetic suite entry ``suite`` at ``scale``;
    * ``"generate"`` — ``generate_circuit(cells, seed=seed)``.

    ``label`` is the instance name inside the campaign (journal lines,
    reports).  :meth:`cache_key` canonicalizes the identity fields so
    the cross-campaign :class:`~repro.service.cache.InstanceCache` can
    share one loaded (and shared-memory-exported) copy between jobs.
    """

    kind: str
    label: str
    path: Optional[str] = None
    are: Optional[str] = None
    suite: Optional[str] = None
    scale: int = 16
    cells: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("file", "suite", "generate"):
            raise ValueError(f"unknown instance source kind {self.kind!r}")
        if not self.label:
            raise ValueError("instance source needs a label")
        if self.kind == "file" and not self.path:
            raise ValueError("file source needs a path")
        if self.kind == "suite" and not self.suite:
            raise ValueError("suite source needs a suite instance name")
        if self.kind == "generate" and self.cells < 1:
            raise ValueError("generate source needs cells >= 1")

    # ------------------------------------------------------------------
    def cache_key(self) -> str:
        """Canonical identity of the instance data (label excluded: two
        jobs may label the same netlist differently yet share one copy)."""
        if self.kind == "file":
            ident = {"kind": "file", "path": str(Path(self.path).resolve()),
                     "are": self.are}
        elif self.kind == "suite":
            ident = {"kind": "suite", "suite": self.suite, "scale": self.scale}
        else:
            ident = {"kind": "generate", "cells": self.cells,
                     "seed": self.seed}
        return json.dumps(ident, sort_keys=True, separators=(",", ":"))

    def load(self) -> Hypergraph:
        if self.kind == "file":
            from repro.cli import _load

            return _load(self.path, self.are)
        if self.kind == "suite":
            from repro.instances import suite_instance

            return suite_instance(self.suite, scale=self.scale)
        from repro.instances import generate_circuit

        return generate_circuit(self.cells, seed=self.seed)

    # -- wire format ----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "label": self.label}
        if self.kind == "file":
            out["path"] = self.path
            if self.are:
                out["are"] = self.are
        elif self.kind == "suite":
            out["suite"] = self.suite
            out["scale"] = self.scale
        else:
            out["cells"] = self.cells
            out["seed"] = self.seed
        return out

    @staticmethod
    def from_json(data: Dict[str, object]) -> "InstanceSource":
        return InstanceSource(
            kind=str(data["kind"]),
            label=str(data["label"]),
            path=data.get("path"),
            are=data.get("are"),
            suite=data.get("suite"),
            scale=int(data.get("scale", 16)),
            cells=int(data.get("cells", 0)),
            seed=int(data.get("seed", 0)),
        )


@dataclass(frozen=True)
class JobSpec:
    """One campaign request, entirely in data.

    The campaign axes (instances × engines × starts, seed stream,
    alpha) mirror :class:`CampaignSpec`; the service axes add a
    fair-share ``priority`` (trials per scheduling round relative to
    other jobs) and the per-job robustness knobs the campaign executor
    already honors (timeout, retries, sticky caches).
    """

    name: str
    instances: List[InstanceSource]
    engines: List[str] = field(default_factory=list)
    #: Declarative k-way / terminal-propagation workloads raced
    #: alongside (or instead of) the 2-way engine ladder; each becomes
    #: one campaign heuristic via :class:`ScenarioHeuristic`.
    scenarios: List[Scenario] = field(default_factory=list)
    num_starts: int = 10
    base_seed: int = 0
    tolerance: float = 0.02
    alpha: float = 0.05
    num_shuffles: int = 100
    priority: int = 1
    timeout_seconds: Optional[float] = None
    max_retries: int = 0
    sticky_cache: bool = False
    sticky_pool_size: int = 2
    #: In-run parallel workers per trial (parallel-proposal coarsening
    #: for sticky hierarchy builds).  The server clamps it against the
    #: fleet size at dispatch time so a job never oversubscribes; any
    #: value is bit-identical to serial, so clamping never changes
    #: records.
    inrun_workers: int = 1
    #: Kernel backend for this job's trials (None = worker default).
    #: Backends are selectable only when bit-identical to numpy, so the
    #: choice never changes records — it is also emitted to the wire
    #: only when set, keeping pre-backend spec fingerprints stable.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job needs a name")
        if not self.instances:
            raise ValueError("job needs at least one instance source")
        labels = [src.label for src in self.instances]
        if len(set(labels)) != len(labels):
            raise ValueError("instance labels must be unique within a job")
        if not self.engines and not self.scenarios:
            raise ValueError("job needs at least one engine or scenario")
        if len(set(self.engines)) != len(self.engines):
            raise ValueError("engine list must not repeat entries")
        for engine in self.engines:
            if engine not in ENGINE_NAMES:
                raise ValueError(
                    f"unknown engine {engine!r}; choose from {ENGINE_NAMES}"
                )
        scenario_names = [s.name for s in self.scenarios]
        if len(set(scenario_names)) != len(scenario_names):
            raise ValueError("scenario names must be unique within a job")
        if self.num_starts < 1:
            raise ValueError("num_starts must be >= 1")
        if self.priority < 1:
            raise ValueError("priority must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.sticky_pool_size < 1:
            raise ValueError("sticky_pool_size must be >= 1")
        if self.inrun_workers < 1:
            raise ValueError("inrun_workers must be >= 1")

    # ------------------------------------------------------------------
    def build_heuristics(self) -> List[object]:
        """The partitioners this job races: engine-ladder 2-way engines
        followed by scenario adapters, in declaration order."""
        heuristics: List[object] = [
            make_engine(name, self.tolerance) for name in self.engines
        ]
        heuristics.extend(ScenarioHeuristic(s) for s in self.scenarios)
        return heuristics

    def campaign_spec(
        self, instances: Dict[str, Hypergraph]
    ) -> CampaignSpec:
        """Assemble the executable campaign from already-loaded
        hypergraphs (``label -> Hypergraph``, normally leased from the
        service's :class:`~repro.service.cache.InstanceCache`)."""
        ordered = {src.label: instances[src.label] for src in self.instances}
        return CampaignSpec(
            name=self.name,
            heuristics=self.build_heuristics(),
            instances=ordered,
            num_starts=self.num_starts,
            base_seed=self.base_seed,
            alpha=self.alpha,
        )

    def fingerprint(self) -> str:
        """Stable short hash of the full wire form (used in job ids)."""
        blob = json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:8]

    # -- wire format ----------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "instances": [src.to_json() for src in self.instances],
            "engines": list(self.engines),
            "num_starts": self.num_starts,
            "base_seed": self.base_seed,
            "tolerance": self.tolerance,
            "alpha": self.alpha,
            "num_shuffles": self.num_shuffles,
            "priority": self.priority,
            "timeout_seconds": self.timeout_seconds,
            "max_retries": self.max_retries,
            "sticky_cache": self.sticky_cache,
            "sticky_pool_size": self.sticky_pool_size,
            "inrun_workers": self.inrun_workers,
        }
        if self.scenarios:
            # Emitted only when present so engine-only specs keep their
            # pre-scenario wire form (and therefore their fingerprints,
            # which job ids and resume-after-restart paths embed).
            out["scenarios"] = [s.to_json() for s in self.scenarios]
        if self.backend is not None:
            # Same fingerprint-stability contract as ``scenarios``.
            out["backend"] = self.backend
        return out

    @staticmethod
    def from_json(data: Dict[str, object]) -> "JobSpec":
        timeout = data.get("timeout_seconds")
        return JobSpec(
            name=str(data["name"]),
            instances=[
                InstanceSource.from_json(d) for d in data["instances"]
            ],
            engines=[str(e) for e in data.get("engines", [])],
            scenarios=[
                Scenario.from_json(d) for d in data.get("scenarios", [])
            ],
            num_starts=int(data.get("num_starts", 10)),
            base_seed=int(data.get("base_seed", 0)),
            tolerance=float(data.get("tolerance", 0.02)),
            alpha=float(data.get("alpha", 0.05)),
            num_shuffles=int(data.get("num_shuffles", 100)),
            priority=int(data.get("priority", 1)),
            timeout_seconds=None if timeout is None else float(timeout),
            max_retries=int(data.get("max_retries", 0)),
            sticky_cache=bool(data.get("sticky_cache", False)),
            sticky_pool_size=int(data.get("sticky_pool_size", 2)),
            inrun_workers=int(data.get("inrun_workers", 1)),
            backend=(
                None if data.get("backend") is None
                else str(data["backend"])
            ),
        )
