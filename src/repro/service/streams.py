"""Live job subscriptions: status, best-so-far, and streaming reports.

A service client watching a job must see its progress *as it happens*
without the server fanning out per-subscriber state: the crash-safe
journal already is the event log.  Each subscriber therefore owns its
own :class:`~repro.evaluation.streaming.JournalTail` (or full
:class:`~repro.evaluation.streaming.ReportBuilder`) over the job's
store and re-reads only the appended bytes — any number of subscribers
per job, none of them coupled to the scheduler's hot path.

The scheduler only has to *nudge*: :class:`SubscriptionHub` is a
condition variable keyed by job, bumped once per journaled outcome
(and once at job finish).  :func:`subscribe_job` turns that into a
generator of JSON-ready event dicts:

* ``kind="status"`` — one event per wakeup with done/ok/error counts
  and per-instance best cuts;
* ``kind="bsf"`` — one event per *improvement* of any instance's best
  cut (the best-so-far trajectories of the paper's Section 3.2);
* ``kind="report"`` — the full rendered report after each batch of new
  outcomes; the final event's report is byte-identical to the post-hoc
  ``repro campaign report`` of the same journal.

Every stream ends with an ``{"event": "end", "status": ...}`` sentinel
once the job finishes and its journal has been fully absorbed.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

from repro.evaluation.streaming import JournalTail, ReportBuilder
from repro.orchestrate.store import RunStore


class SubscriptionHub:
    """Condition-variable fanout from the scheduler to subscribers.

    ``notify(job_id)`` bumps the job's version; ``wait(job_id, seen)``
    blocks until the version passes ``seen`` (or a timeout).  Versions
    only grow, so a slow subscriber can never miss a wakeup — it just
    coalesces several into one poll, and the journal tail it polls is
    lossless anyway.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._versions: Dict[str, int] = {}
        self._finished: Dict[str, bool] = {}

    def notify(self, job_id: str) -> None:
        with self._cond:
            self._versions[job_id] = self._versions.get(job_id, 0) + 1
            self._cond.notify_all()

    def finish(self, job_id: str) -> None:
        """Mark the job finished (done or cancelled) and wake everyone."""
        with self._cond:
            self._finished[job_id] = True
            self._versions[job_id] = self._versions.get(job_id, 0) + 1
            self._cond.notify_all()

    def finished(self, job_id: str) -> bool:
        with self._cond:
            return self._finished.get(job_id, False)

    def version(self, job_id: str) -> int:
        with self._cond:
            return self._versions.get(job_id, 0)

    def wait(self, job_id: str, seen: int, timeout: float = 1.0) -> int:
        """Block until the job's version exceeds ``seen`` (or timeout);
        returns the current version either way."""
        with self._cond:
            self._cond.wait_for(
                lambda: self._versions.get(job_id, 0) > seen
                or self._finished.get(job_id, False),
                timeout=timeout,
            )
            return self._versions.get(job_id, 0)

    def forget(self, job_id: str) -> None:
        with self._cond:
            self._versions.pop(job_id, None)
            self._finished.pop(job_id, None)


def _status_event(tail: JournalTail, total: int) -> Dict[str, object]:
    outcomes = tail.outcomes()
    ok = sum(1 for o in outcomes if o.ok)
    best: Dict[str, float] = {}
    for o in outcomes:
        if o.ok and (o.instance not in best or o.cut < best[o.instance]):
            best[o.instance] = o.cut
    return {
        "event": "status",
        "done": len(outcomes),
        "total": total,
        "ok": ok,
        "errors": len(outcomes) - ok,
        "best": best,
    }


def subscribe_job(
    store: RunStore,
    hub: SubscriptionHub,
    job_id: str,
    kind: str = "status",
    total: Optional[int] = None,
    num_shuffles: int = 100,
    poll_timeout: float = 1.0,
    max_waits: Optional[int] = None,
) -> Iterator[Dict[str, object]]:
    """Yield live events for one job until it finishes.

    Each subscriber tails the journal independently, so late joiners
    first replay history (status catches up in one event; bsf replays
    every improvement; report starts from the current partial render)
    and then follow live.  ``max_waits`` bounds the number of hub waits
    — for tests and for HTTP handlers that must not block forever on an
    abandoned job.
    """
    if kind not in ("status", "bsf", "report"):
        raise ValueError(f"unknown subscription kind {kind!r}")

    builder: Optional[ReportBuilder] = None
    if kind == "report":
        builder = ReportBuilder(store, num_shuffles=num_shuffles)
        tail = builder.tail
        if total is None:
            total = builder.total
    else:
        tail = JournalTail(store)
        if total is None:
            total = int(store.load_meta().get("total_trials", 0))

    best: Dict[str, float] = {}
    seen = -1  #: hub version already consumed (-1 forces first poll)
    waits = 0
    while True:
        new = tail.poll()
        if new:
            if kind == "status":
                yield _status_event(tail, total)
            elif kind == "bsf":
                for o in tail.outcomes():
                    if not o.ok:
                        continue
                    if o.instance not in best or o.cut < best[o.instance]:
                        best[o.instance] = o.cut
                        yield {
                            "event": "bsf",
                            "trial": o.trial,
                            "instance": o.instance,
                            "heuristic": o.heuristic,
                            "cut": o.cut,
                        }
            else:
                yield {
                    "event": "report",
                    "done": len(tail.outcomes()),
                    "total": total,
                    "report": builder.render(),
                }
        done = len(tail.outcomes())
        if hub.finished(job_id) and (done >= total or not new):
            # Job is over and the journal is drained (a finished job
            # writes nothing more; ``not new`` catches cancellations
            # that stop short of ``total``).
            yield {
                "event": "end",
                "done": done,
                "total": total,
            }
            return
        if max_waits is not None and waits >= max_waits:
            return
        waits += 1
        seen = hub.wait(job_id, seen, timeout=poll_timeout)
