"""Synthetic netlist generators.

The ISPD98 IBM benchmarks the paper reports on are proprietary inputs we
cannot ship; these generators produce instances that match the *salient
attributes of real-world inputs* the paper enumerates in Section 2.1:

* sparsity — number of nets very close to the number of cells;
* average vertex degree and average net size between 3 and 5;
* a small number of extremely large nets (clock/reset-like);
* wide variation in cell areas, including large macros (the ISPD98
  attribute that exposes CLIP corking — the MCNC-era unit-area cases
  lack it, which is exactly the paper's point).

``generate_circuit`` uses Rent-rule-style recursive construction: cells
are arranged on a line, recursively halved, and nets are created inside
blocks and across block boundaries with counts decaying by the Rent
exponent.  The result has genuine cluster structure — good bisections
exist and move-based heuristics behave as they do on real netlists —
unlike uniformly random hypergraphs, whose cuts concentrate tightly.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph


def generate_circuit(
    num_cells: int,
    seed: int = 0,
    rent_exponent: float = 0.65,
    local_net_density: float = 0.55,
    cross_net_coefficient: float = 0.45,
    leaf_size: int = 8,
    num_global_nets: int = 2,
    global_net_fraction: float = 0.05,
    unit_areas: bool = False,
    macro_fraction: float = 0.01,
    macro_area_range: Sequence[float] = (0.005, 0.03),
    area_sigma: float = 0.7,
) -> Hypergraph:
    """Generate a clustered, ISPD98-like netlist.

    Parameters
    ----------
    num_cells:
        Number of cells (vertices).
    seed:
        Generator seed; identical parameters + seed give identical
        instances.
    rent_exponent:
        Rent exponent ``p``: a block of ``s`` cells receives on the
        order of ``s**p`` boundary-crossing nets.  Real standard-cell
        designs have ``p`` around 0.55-0.75.
    local_net_density:
        Nets per cell created *inside* leaf blocks.
    cross_net_coefficient:
        Multiplier on ``size**p`` for boundary-crossing nets.
    leaf_size:
        Recursion stops at blocks of this size.
    num_global_nets / global_net_fraction:
        Number of clock/reset-like nets and the fraction of all cells
        each one touches.
    unit_areas:
        True reproduces MCNC-style unit-area instances ("the older MCNC
        test cases lack large cells"); False gives actual-area instances
        with lognormal cell areas plus macros.
    macro_fraction:
        Fraction of cells that are macros.
    macro_area_range:
        Macro areas as fractions of the estimated total area; the upper
        end deliberately exceeds a 2% balance slack so that the corking
        guard has real work on actual-area instances.
    area_sigma:
        Sigma of the lognormal standard-cell area distribution.
    """
    if num_cells < 2:
        raise ValueError("num_cells must be >= 2")
    rng = random.Random(seed)

    # --- nets over a "placed" linear ordering --------------------------
    nets: List[List[int]] = []

    def sample_net_size() -> int:
        # Mean ~3.4, matching the paper's "average net sizes typically
        # between 3 and 5"; heavy-ish tail up to 8.
        r = rng.random()
        if r < 0.45:
            return 2
        if r < 0.72:
            return 3
        if r < 0.87:
            return 4
        if r < 0.95:
            return 5
        return rng.randint(6, 8)

    def add_net_from_range(lo: int, hi: int, force_cross: Optional[int] = None):
        size = min(sample_net_size(), hi - lo)
        if size < 2:
            return
        pins = set()
        if force_cross is not None:
            # Guarantee the net actually crosses the block midpoint.
            pins.add(rng.randrange(lo, force_cross))
            pins.add(rng.randrange(force_cross, hi))
        while len(pins) < size:
            pins.add(rng.randrange(lo, hi))
        nets.append(sorted(pins))

    def recurse(lo: int, hi: int) -> None:
        size = hi - lo
        if size <= leaf_size:
            num_local = max(1, round(size * local_net_density))
            for _ in range(num_local):
                add_net_from_range(lo, hi)
            return
        mid = (lo + hi) // 2
        recurse(lo, mid)
        recurse(mid, hi)
        num_cross = max(1, round(cross_net_coefficient * size**rent_exponent))
        for _ in range(num_cross):
            add_net_from_range(lo, hi, force_cross=mid)

    recurse(0, num_cells)

    # --- global (clock/reset-like) nets --------------------------------
    global_size = max(2, int(num_cells * global_net_fraction))
    for _ in range(num_global_nets):
        pins = rng.sample(range(num_cells), min(global_size, num_cells))
        nets.append(sorted(pins))

    # --- connect any cell the sampling missed (real netlists have no
    #     floating cells; a 2-pin net to a linear neighbour preserves
    #     locality) ------------------------------------------------------
    touched = [False] * num_cells
    for pins in nets:
        for v in pins:
            touched[v] = True
    for v in range(num_cells):
        if not touched[v]:
            u = v + 1 if v + 1 < num_cells else v - 1
            nets.append(sorted((v, u)))

    # --- areas ----------------------------------------------------------
    if unit_areas:
        areas = [1.0] * num_cells
    else:
        areas = [
            max(1.0, round(math.exp(rng.gauss(0.0, area_sigma)) * 4.0))
            for _ in range(num_cells)
        ]
        est_total = sum(areas)
        num_macros = max(0, round(num_cells * macro_fraction))
        macro_ids = rng.sample(range(num_cells), num_macros) if num_macros else []
        lo_f, hi_f = macro_area_range
        for v in macro_ids:
            areas[v] = round(est_total * rng.uniform(lo_f, hi_f))

    # --- shuffle vertex ids so nothing downstream can exploit the
    #     constructive linear order --------------------------------------
    perm = list(range(num_cells))
    rng.shuffle(perm)
    shuffled_nets = [sorted(perm[v] for v in pins) for pins in nets]
    shuffled_areas = [0.0] * num_cells
    for old, new in enumerate(perm):
        shuffled_areas[new] = areas[old]

    return Hypergraph(
        shuffled_nets,
        num_vertices=num_cells,
        vertex_weights=shuffled_areas,
    )


def random_hypergraph(
    num_vertices: int,
    num_nets: int,
    seed: int = 0,
    max_net_size: int = 5,
    unit_areas: bool = True,
    max_area: int = 10,
) -> Hypergraph:
    """Uniformly random hypergraph (no cluster structure).

    Used by property-based tests: every structural invariant must hold
    on arbitrary hypergraphs, not just realistic ones.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    rng = random.Random(seed)
    nets = []
    for _ in range(num_nets):
        size = rng.randint(2, min(max_net_size, num_vertices))
        nets.append(sorted(rng.sample(range(num_vertices), size)))
    if unit_areas:
        areas = None
    else:
        areas = [float(rng.randint(1, max_area)) for _ in range(num_vertices)]
    return Hypergraph(nets, num_vertices=num_vertices, vertex_weights=areas)


def corking_initial(
    hypergraph: Hypergraph,
    num_macros: int,
    seed: int = 0,
) -> List[int]:
    """Adversarial initial assignment that makes CLIP cork immediately.

    For a :func:`corking_instance` (macros are the last ``num_macros``
    vertex ids), macros are placed *opposite* their neighbours so every
    macro net is cut: each macro's initial gain equals its (large)
    degree, so CLIP's zero-bucket ordering puts a macro at the head of
    each side's bucket.  The macros are alternated across sides so both
    buckets are corked.  Ordinary cells are packed to near-balance.
    """
    rng = random.Random(seed)
    n = hypergraph.num_vertices
    macro_ids = list(range(n - num_macros, n))
    assignment = [-1] * n

    neighbor_side: List[Optional[int]] = [None] * n
    for i, macro in enumerate(macro_ids):
        side = i % 2
        assignment[macro] = side
        for e in hypergraph.nets_of(macro):
            for u in hypergraph.pins_of(e):
                if u != macro and assignment[u] == -1:
                    neighbor_side[u] = 1 - side

    # Pack remaining cells toward balance, honouring neighbour hints
    # when they do not hurt balance too much.
    weights = [0.0, 0.0]
    for v in range(n):
        if assignment[v] != -1:
            weights[assignment[v]] += hypergraph.vertex_weight(v)
    order = [v for v in range(n) if assignment[v] == -1]
    rng.shuffle(order)
    for v in order:
        hint = neighbor_side[v]
        lighter = 0 if weights[0] <= weights[1] else 1
        side = hint if hint is not None else lighter
        assignment[v] = side
        weights[side] += hypergraph.vertex_weight(v)
    # Final rebalance pass with non-hinted cells only would complicate
    # things; the FM engines accept slightly imbalanced starts.
    return assignment


def corking_instance(
    num_cells: int = 200,
    num_macros: int = 2,
    macro_area_fraction: float = 0.15,
    macro_degree: int = 40,
    seed: int = 0,
) -> Hypergraph:
    """Pathological instance that exhibits CLIP corking (Section 2.3).

    A clustered base circuit is augmented with a few very wide,
    very-high-degree macro cells.  At the start of a CLIP pass every
    move sits in the zero-gain bucket with the highest-initial-gain
    cells at the heads — and the macros, having by far the highest
    degree, have the highest initial gains.  Their area exceeds any
    reasonable balance slack, so the move at the head of each bucket is
    illegal and the pass "corks".  With the guard of Section 2.3
    (``FMConfig.guard_oversized``) the macros never enter the gain
    structure and refinement proceeds normally.
    """
    rng = random.Random(seed)
    base = generate_circuit(
        num_cells, seed=seed, unit_areas=False, macro_fraction=0.0
    )
    nets = [base.pins_of(e) for e in base.nets()]
    areas = base.vertex_weights
    total = sum(areas)

    n = num_cells + num_macros
    for m in range(num_macros):
        macro = num_cells + m
        areas.append(round(total * macro_area_fraction))
        # High degree: many 2-3 pin nets from the macro into the circuit.
        for _ in range(macro_degree):
            others = rng.sample(range(num_cells), rng.randint(1, 2))
            nets.append([macro] + others)
    return Hypergraph(nets, num_vertices=n, vertex_weights=areas)
