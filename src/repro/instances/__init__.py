"""Synthetic benchmark instances (the offline stand-in for ISPD98/MCNC).

See DESIGN.md, "Substitutions": the real IBM benchmarks cannot be
shipped; these generators match the instance statistics the paper lists
in Section 2.1 and the suite mirrors the published ISPD98 cell counts at
a documented scale.
"""

from repro.instances.adversarial import (
    adversarial_instance,
    adversarial_names,
)
from repro.instances.generators import (
    corking_initial,
    corking_instance,
    generate_circuit,
    random_hypergraph,
)
from repro.instances.perturb import (
    Mutant,
    isomorphic_mutant,
    mutant_family,
    ordering_sensitivity,
)
from repro.instances.suite import (
    DEFAULT_SCALE,
    SUITE,
    SuiteSpec,
    suite_instance,
    suite_names,
)

__all__ = [
    "DEFAULT_SCALE",
    "Mutant",
    "SUITE",
    "SuiteSpec",
    "adversarial_instance",
    "adversarial_names",
    "corking_initial",
    "corking_instance",
    "generate_circuit",
    "isomorphic_mutant",
    "mutant_family",
    "ordering_sensitivity",
    "random_hypergraph",
    "suite_instance",
    "suite_names",
]
