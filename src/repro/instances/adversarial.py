"""Adversarial instance registry: workloads built to stress heuristics.

The synthetic suite (:mod:`repro.instances.suite`) mirrors *typical*
ISPD98 statistics; a methodology that only ever sees typical inputs
never flushes out the assumptions typical inputs happen to satisfy.
This registry collects deterministic families chosen to violate one
such assumption each:

* ``adv-clique`` — clique blocks chained by single nets: locally dense
  all-pairs connectivity with razor-thin inter-block cuts, the classic
  trap for greedy move selection (every internal move looks equally
  bad) and a worst case for net-by-net gain updates;
* ``adv-rent-055`` / ``adv-rent-065`` / ``adv-rent-075`` — a Rent
  exponent sweep: low-``p`` instances have deep natural cuts (easy),
  high-``p`` instances approach random hypergraphs (hard), bracketing
  the regime the suite samples from;
* ``adv-clock`` — huge-net clock/reset stress: a handful of nets each
  touching a large fraction of all cells.  Such nets are cut in almost
  every balanced solution and their gain contributions are pure noise —
  the instances that historically exposed corking and tie-breaking
  pathologies;
* ``adv-mutant-1`` / ``adv-mutant-2`` — isomorphic relabelings of the
  same base netlist via :func:`repro.instances.perturb.mutant_family`
  (Brglez's statistically-equivalent instance classes): any heuristic
  whose ranking shifts between mutants is ranking vertex order, not
  structure.

Every entry is a pure function of its name and ``scale`` — builders
seed private :class:`random.Random` streams and never touch process
RNG state — so campaign journals referring to these names replay
identically across processes and machines (pinned by the cross-process
hash tests in ``tests/test_instances_determinism.py``).

The registry is served through :func:`repro.instances.suite.suite_instance`
as a fallback namespace, so every consumer of suite names — campaign
specs, service ``InstanceSource(kind="suite")`` entries, CLI flags —
accepts adversarial names with no new plumbing.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Callable, Dict, List

from repro.hypergraph.hypergraph import Hypergraph
from repro.instances.generators import generate_circuit
from repro.instances.perturb import mutant_family

#: Nominal (scale-1) cell counts, divided by ``scale`` like the suite.
_NOMINAL_CELLS = 9600


def _cells(scale: int) -> int:
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return max(64, _NOMINAL_CELLS // scale)


def _clique_chain(scale: int) -> Hypergraph:
    """Clique blocks chained by single 2-pin bridge nets."""
    n = _cells(scale)
    clique = 8
    rng = random.Random(4242)
    num_blocks = max(2, n // clique)
    nets: List[List[int]] = []
    weights: List[float] = []
    for b in range(num_blocks):
        base = b * clique
        members = list(range(base, base + clique))
        for i in range(clique):
            for j in range(i + 1, clique):
                nets.append([members[i], members[j]])
        if b + 1 < num_blocks:
            # One thin bridge to the next block: the only good cuts.
            nets.append([base + clique - 1, base + clique])
    num_vertices = num_blocks * clique
    for _ in range(num_vertices):
        weights.append(1.0 + 0.25 * rng.random())
    return Hypergraph(nets, num_vertices=num_vertices, vertex_weights=weights)


def _rent(exponent: float, seed: int) -> Callable[[int], Hypergraph]:
    def build(scale: int) -> Hypergraph:
        return generate_circuit(
            _cells(scale), seed=seed, rent_exponent=exponent
        )

    return build


def _clock_stress(scale: int) -> Hypergraph:
    """Standard clustered netlist plus massive clock/reset-like nets."""
    return generate_circuit(
        _cells(scale),
        seed=9090,
        num_global_nets=6,
        global_net_fraction=0.30,
    )


def _mutant(index: int) -> Callable[[int], Hypergraph]:
    def build(scale: int) -> Hypergraph:
        base = generate_circuit(_cells(scale), seed=7700)
        family = mutant_family(base, count=index, base_seed=5150)
        return family[index - 1].hypergraph

    return build


_BUILDERS: Dict[str, Callable[[int], Hypergraph]] = {
    "adv-clique": _clique_chain,
    "adv-rent-055": _rent(0.55, 8801),
    "adv-rent-065": _rent(0.65, 8802),
    "adv-rent-075": _rent(0.75, 8803),
    "adv-clock": _clock_stress,
    "adv-mutant-1": _mutant(1),
    "adv-mutant-2": _mutant(2),
}


def adversarial_names() -> List[str]:
    """All adversarial registry names, sorted."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def adversarial_instance(name: str, scale: int = 16) -> Hypergraph:
    """Build (and cache) one adversarial instance.

    ``scale`` divides the nominal cell count exactly as it does for the
    suite; identical (name, scale) always yields an identical
    hypergraph.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown adversarial instance {name!r}; "
            f"valid: {', '.join(adversarial_names())}"
        )
    return builder(scale)
