"""Instance perturbation for design-of-experiments (Brglez).

Section 3.2 cites Brglez's question: "Which improvements are due to
improved heuristic and which are merely due to chance?"  His proposed
methodology evaluates heuristics on *classes of statistically
equivalent instances* — e.g. isomorphic relabelings of one netlist —
rather than a single frozen benchmark, because move-based heuristics
are sensitive to vertex and net ordering (tie-breaking!) in ways that
have nothing to do with instance structure.

This module generates such equivalence classes:

* :func:`isomorphic_mutant` — relabel vertices and permute net order;
  the hypergraph is structurally identical, so any *exact* solver would
  return the same cut, but ordering-sensitive heuristics may not.
* :func:`mutant_family` — a deterministic family of mutants.
* :func:`translate_assignment` — map a solution on a mutant back to the
  original vertex ids (for cut cross-checking).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class Mutant:
    """An isomorphic relabeling of a base hypergraph.

    ``vertex_map[old_id] = new_id`` in the mutant.
    """

    hypergraph: Hypergraph
    vertex_map: List[int]

    def translate_assignment(self, mutant_assignment: Sequence[int]) -> List[int]:
        """Map a mutant-side assignment back onto base vertex ids."""
        if len(mutant_assignment) != len(self.vertex_map):
            raise ValueError("assignment length mismatch")
        return [mutant_assignment[self.vertex_map[v]] for v in
                range(len(self.vertex_map))]


def isomorphic_mutant(hypergraph: Hypergraph, seed: int) -> Mutant:
    """Random isomorphic relabeling of ``hypergraph``.

    Vertices are renamed by a random permutation, nets are re-ordered
    randomly, and pins within each net are re-sorted under the new ids.
    Cut structure is exactly preserved (see
    :meth:`Mutant.translate_assignment`).
    """
    rng = random.Random(seed)
    n = hypergraph.num_vertices
    perm = list(range(n))
    rng.shuffle(perm)  # perm[old] = new

    nets = []
    net_weights = []
    order = list(hypergraph.nets())
    rng.shuffle(order)
    for e in order:
        nets.append(sorted(perm[v] for v in hypergraph.pins_of(e)))
        net_weights.append(hypergraph.net_weight(e))

    weights = [0.0] * n
    for old in range(n):
        weights[perm[old]] = hypergraph.vertex_weight(old)

    mutant_hg = Hypergraph(
        nets, num_vertices=n, vertex_weights=weights, net_weights=net_weights
    )
    return Mutant(hypergraph=mutant_hg, vertex_map=perm)


def mutant_family(
    hypergraph: Hypergraph, count: int, base_seed: int = 0
) -> List[Mutant]:
    """A deterministic family of ``count`` isomorphic mutants."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return [
        isomorphic_mutant(hypergraph, base_seed + i) for i in range(count)
    ]


def ordering_sensitivity(
    partitioner,
    hypergraph: Hypergraph,
    num_mutants: int = 8,
    seed: int = 0,
) -> List[float]:
    """Cuts obtained by ``partitioner`` (fixed seed) across an
    isomorphic mutant family.

    A perfectly ordering-robust heuristic returns identical cuts for
    every mutant; the spread of this list is the Brglez "due to chance"
    component that single-benchmark reporting hides.
    """
    cuts = []
    for mutant in mutant_family(hypergraph, num_mutants, base_seed=seed):
        result = partitioner.partition(mutant.hypergraph, seed=seed)
        # Cross-check: the translated assignment has the same cut on
        # the base instance (isomorphism sanity).
        base_assignment = mutant.translate_assignment(result.assignment)
        base_cut = hypergraph.cut_size(base_assignment)
        if abs(base_cut - result.cut) > 1e-9:
            raise AssertionError(
                "mutant translation changed the cut: "
                f"{result.cut} vs {base_cut}"
            )
        cuts.append(result.cut)
    return cuts
