"""The synthetic ISPD98-like benchmark suite (``ibm01s`` … ``ibm18s``).

Each entry mirrors one IBM benchmark of the ISPD98 suite [Alpert 98]:
the *relative* sizes follow the published cell counts, scaled down by
``DEFAULT_SCALE`` because the FM inner loops run on a pure-Python
substrate roughly two orders of magnitude slower than 1999-era C code.
(The paper's experiments concern relative effects — implicit-decision
spreads, strong-vs-weak implementations, multistart tradeoffs — all of
which are preserved under scaling; see DESIGN.md.)

Instances are deterministic: ``suite_instance("ibm01s")`` always returns
the same hypergraph for a given scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.hypergraph.hypergraph import Hypergraph
from repro.instances.generators import generate_circuit


@dataclass(frozen=True)
class SuiteSpec:
    """Specification of one synthetic suite instance."""

    name: str  #: e.g. ``ibm01s`` ("s" = synthetic)
    paper_cells: int  #: cell count of the real ISPD98 benchmark
    seed: int
    rent_exponent: float
    macro_fraction: float


#: Published ISPD98 cell counts (Alpert, ISPD98 paper, Table 1).
_PAPER_CELLS: Dict[str, int] = {
    "ibm01": 12752,
    "ibm02": 19601,
    "ibm03": 23136,
    "ibm04": 27507,
    "ibm05": 29347,
    "ibm06": 32498,
    "ibm07": 45926,
    "ibm08": 51309,
    "ibm09": 53395,
    "ibm10": 69429,
    "ibm11": 70558,
    "ibm12": 71076,
    "ibm13": 84199,
    "ibm14": 147605,
    "ibm15": 161570,
    "ibm16": 183484,
    "ibm17": 185495,
    "ibm18": 210613,
}

#: Scale divisor applied to the published cell counts.
DEFAULT_SCALE = 16

SUITE: Dict[str, SuiteSpec] = {
    f"{base}s": SuiteSpec(
        name=f"{base}s",
        paper_cells=cells,
        seed=1000 + i,
        # Mild per-instance variety, like the real suite's spread.
        rent_exponent=0.60 + 0.02 * (i % 5),
        macro_fraction=0.008 + 0.002 * (i % 3),
    )
    for i, (base, cells) in enumerate(sorted(_PAPER_CELLS.items()))
}


def suite_names() -> List[str]:
    """All suite instance names in order."""
    return sorted(SUITE)


@lru_cache(maxsize=None)
def suite_instance(
    name: str, scale: int = DEFAULT_SCALE, unit_areas: bool = False
) -> Hypergraph:
    """Build (and cache) a suite instance.

    Parameters
    ----------
    name:
        One of :func:`suite_names` (e.g. ``"ibm01s"``).
    scale:
        Divisor on the published cell count; ``scale=16`` (default)
        yields ~800 cells for ibm01s up to ~13k for ibm18s.  Larger
        divisors give faster experiments.
    unit_areas:
        True produces the MCNC-style unit-area variant of the instance
        (used to demonstrate how unit-area benchmarking masks corking).
    """
    spec = SUITE.get(name)
    if spec is None:
        # Fallback namespace: the adversarial registry.  Serving it
        # through suite_instance means every consumer of suite names
        # (campaign specs, service InstanceSource(kind="suite"), CLI
        # flags) accepts adversarial names with no new plumbing.
        # Adversarial instances define their own area model, so
        # ``unit_areas`` does not apply to them.
        from repro.instances.adversarial import (
            adversarial_instance,
            adversarial_names,
        )

        if name in adversarial_names():
            return adversarial_instance(name, scale=scale)
        raise KeyError(
            f"unknown suite instance {name!r}; valid: "
            f"{', '.join(suite_names() + adversarial_names())}"
        )
    if scale < 1:
        raise ValueError("scale must be >= 1")
    num_cells = max(64, spec.paper_cells // scale)
    return generate_circuit(
        num_cells,
        seed=spec.seed,
        rent_exponent=spec.rent_exponent,
        macro_fraction=0.0 if unit_areas else spec.macro_fraction,
        unit_areas=unit_areas,
    )
