"""repro — FM-based hypergraph partitioning for VLSI CAD, with a
principled experimentation & reporting methodology.

Reproduction of Caldwell, Kahng, Kennings & Markov, "Hypergraph
Partitioning for VLSI CAD: Methodology for Heuristic Development,
Experimentation and Reporting" (DAC 1999).

Subpackages
-----------
``repro.hypergraph``
    Hypergraph data structure, builders, ISPD98/hMetis I/O, statistics.
``repro.instances``
    Synthetic ISPD98-like benchmark suite and generators.
``repro.core``
    Flat FM and CLIP FM engines with every implicit implementation
    decision (Section 2.2) exposed as configuration.
``repro.multilevel``
    Multilevel (ML LIFO / ML CLIP) partitioning with V-cycling.
``repro.baselines``
    KL, spectral, random/BFS baselines, and the weak "Reported" FM.
``repro.evaluation``
    Experiment runner, BSF curves, Pareto frontiers, speed-dependent
    rankings, significance tests, CPU normalization, paper-style tables.
``repro.orchestrate``
    Parallel, crash-safe campaign orchestration: trial plans, run
    journal with resume, timeouts/retries, progress events.
``repro.placement``
    Top-down recursive min-cut placement with terminal propagation —
    the driving application of Section 2.1.

Quickstart
----------
>>> from repro import FMPartitioner, suite_instance
>>> hg = suite_instance("ibm01s")
>>> result = FMPartitioner(tolerance=0.02).partition(hg, seed=1)
>>> result.legal
True
"""

from repro.core import (
    BalanceConstraint,
    BestChoice,
    FMConfig,
    FMPartitioner,
    InitialSolution,
    InsertionOrder,
    Partition2,
    PartitionResult,
    TieBias,
    UpdatePolicy,
    run_multistart,
)
from repro.hypergraph import Hypergraph, HypergraphBuilder
from repro.instances import generate_circuit, suite_instance, suite_names
from repro.multilevel import MLConfig, MLPartitioner

__version__ = "1.0.0"

__all__ = [
    "BalanceConstraint",
    "BestChoice",
    "FMConfig",
    "FMPartitioner",
    "Hypergraph",
    "HypergraphBuilder",
    "InitialSolution",
    "InsertionOrder",
    "MLConfig",
    "MLPartitioner",
    "Partition2",
    "PartitionResult",
    "TieBias",
    "UpdatePolicy",
    "__version__",
    "generate_circuit",
    "run_multistart",
    "suite_instance",
    "suite_names",
]
