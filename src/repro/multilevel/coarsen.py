"""Hypergraph coarsening: contract a clustering into a coarse level.

Given a cluster map (one cluster id per fine vertex), the coarse
hypergraph has one vertex per cluster whose weight is the cluster's total
area.  Nets project onto clusters with duplicate pins merged; nets that
collapse to fewer than two pins disappear, and *identical* coarse nets
are merged with their weights summed (the standard hMetis optimization —
it keeps gain magnitudes honest across levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    fine:
        The finer hypergraph this level was built from.
    coarse:
        The contracted hypergraph.
    cluster_of:
        Fine vertex -> coarse vertex map (length ``fine.num_vertices``).
    """

    fine: Hypergraph
    coarse: Hypergraph
    cluster_of: List[int]

    def project_assignment(self, coarse_assignment: List[int]) -> List[int]:
        """Lift a coarse assignment to the fine hypergraph."""
        return [coarse_assignment[self.cluster_of[v]] for v in
                range(self.fine.num_vertices)]


def coarsen(hypergraph: Hypergraph, cluster_of: List[int]) -> CoarseLevel:
    """Contract ``hypergraph`` according to ``cluster_of``.

    Cluster ids may be arbitrary non-negative integers; they are
    renumbered densely.  Raises ``ValueError`` on negative ids or a map
    of the wrong length.
    """
    n = hypergraph.num_vertices
    if len(cluster_of) != n:
        raise ValueError("cluster_of length mismatch")

    dense: Dict[int, int] = {}
    mapped = [0] * n
    for v in range(n):
        c = cluster_of[v]
        if c < 0:
            raise ValueError(f"vertex {v} has negative cluster id {c}")
        d = dense.get(c)
        if d is None:
            d = len(dense)
            dense[c] = d
        mapped[v] = d
    num_coarse = len(dense)

    weights = [0.0] * num_coarse
    for v in range(n):
        weights[mapped[v]] += hypergraph.vertex_weight(v)

    # Project nets; merge identical coarse nets by pin-tuple key.
    net_index: Dict[Tuple[int, ...], int] = {}
    coarse_nets: List[List[int]] = []
    coarse_net_weights: List[float] = []
    for e in range(hypergraph.num_nets):
        pins = sorted({mapped[v] for v in hypergraph.pins_of(e)})
        if len(pins) < 2:
            continue
        key = tuple(pins)
        idx = net_index.get(key)
        if idx is None:
            net_index[key] = len(coarse_nets)
            coarse_nets.append(pins)
            coarse_net_weights.append(hypergraph.net_weight(e))
        else:
            coarse_net_weights[idx] += hypergraph.net_weight(e)

    coarse = Hypergraph(
        coarse_nets,
        num_vertices=num_coarse,
        vertex_weights=weights,
        net_weights=coarse_net_weights,
    )
    return CoarseLevel(fine=hypergraph, coarse=coarse, cluster_of=mapped)
