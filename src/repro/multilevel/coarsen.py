"""Hypergraph coarsening: contract a clustering into a coarse level.

Given a cluster map (one cluster id per fine vertex), the coarse
hypergraph has one vertex per cluster whose weight is the cluster's total
area.  Nets project onto clusters with duplicate pins merged; nets that
collapse to fewer than two pins disappear, and *identical* coarse nets
are merged with their weights summed (the standard hMetis optimization —
it keeps gain magnitudes honest across levels).

**Kernel engineering.**  The seed implementation renumbered clusters
through a dict, deduped each net's projected pins through a set, and
merged identical nets through a dict of pin tuples.  This rewrite keeps
the exact same output — same coarse vertex numbering (first-encounter
order), same net order (first occurrence of each distinct coarse net),
same float weight accumulation order — but computes it on flat arrays:

* cluster renumbering via an epoch-stamped remap array (dict only when
  ids are sparse, i.e. beyond ``2n``),
* per-net pin dedup via an epoch-stamped buffer (no set allocation),
* identical-net merging via one stable sort of the projected nets by
  pin-tuple key: stability makes the group representative the smallest
  original net id, which is precisely the seed dict's first-occurrence
  order, and ascending original ids within a group reproduce the seed's
  weight accumulation order bit for bit,
* coarse CSR assembled flat and adopted by the trusted
  :meth:`Hypergraph.from_csr` fast path — no re-validation of pins the
  kernel just constructed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.perf import PerfCounters
from repro.hypergraph.hypergraph import Hypergraph
from repro.multilevel.matching import _WS, _kernels, _np


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy.

    Attributes
    ----------
    fine:
        The finer hypergraph this level was built from.
    coarse:
        The contracted hypergraph.
    cluster_of:
        Fine vertex -> coarse vertex map (length ``fine.num_vertices``).
    """

    fine: Hypergraph
    coarse: Hypergraph
    cluster_of: List[int]

    def project_assignment(self, coarse_assignment: List[int]) -> List[int]:
        """Lift a coarse assignment to the fine hypergraph (fresh list)."""
        return [coarse_assignment[self.cluster_of[v]] for v in
                range(self.fine.num_vertices)]

    def project_assignment_into(
        self, coarse_assignment: List[int], out: List[int]
    ) -> List[int]:
        """Lift a coarse assignment into ``out`` (no allocation).

        ``out`` must have length ``fine.num_vertices``; it is returned
        for convenience.  Uncoarsening projects once per level per
        start, so the multilevel refiner reuses one buffer per level
        size instead of building a fresh list each time.
        """
        cluster_of = self.cluster_of
        if len(out) != len(cluster_of):
            raise ValueError("projection buffer length mismatch")
        for v in range(len(cluster_of)):
            out[v] = coarse_assignment[cluster_of[v]]
        return out


def coarsen(
    hypergraph: Hypergraph,
    cluster_of: List[int],
    perf: Optional[PerfCounters] = None,
    backend: Optional[str] = None,
) -> CoarseLevel:
    """Contract ``hypergraph`` according to ``cluster_of``.

    Cluster ids may be arbitrary non-negative integers; they are
    renumbered densely.  Raises ``ValueError`` on negative ids or a map
    of the wrong length.
    """
    t0 = time.perf_counter() if perf is not None else 0.0
    n = hypergraph.num_vertices
    if len(cluster_of) != n:
        raise ValueError("cluster_of length mismatch")
    ks = _kernels(backend)
    if ks is not None and n > 0 and max(cluster_of) < 2 * n:
        # Dense-ish ids only (the same gate the interpreted path uses to
        # pick the stamped remap array); sparse ids fall through to the
        # dict-based renumbering below.  Negative ids are detected inside
        # the kernel, which reports the first offending vertex so the
        # error is identical to the interpreted path's.
        level = _coarsen_kernel(hypergraph, cluster_of, ks, perf, t0)
        if level is not None:
            return level
    net_ptr, net_pins, _, _ = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    net_weights = hypergraph._net_weights
    ws = _WS

    # ----- dense renumbering in first-encounter order -----------------
    mapped = [0] * n
    num_coarse = 0
    max_id = max(cluster_of, default=-1)
    if max_id >= 0 and max_id < 2 * n:
        # Dense-ish ids (the matching kernels guarantee ids < n): use the
        # epoch-stamped remap array.
        ws.ensure_remap(max_id + 1)
        remap, stamp2 = ws.remap, ws.stamp2
        epoch2 = ws.bump2()
        for v in range(n):
            c = cluster_of[v]
            if c < 0:
                raise ValueError(f"vertex {v} has negative cluster id {c}")
            if stamp2[c] == epoch2:
                mapped[v] = remap[c]
            else:
                stamp2[c] = epoch2
                remap[c] = num_coarse
                mapped[v] = num_coarse
                num_coarse += 1
    else:
        # Sparse ids: fall back to a dict (identical first-encounter
        # numbering, just a different container).
        dense: Dict[int, int] = {}
        for v in range(n):
            c = cluster_of[v]
            if c < 0:
                raise ValueError(f"vertex {v} has negative cluster id {c}")
            d = dense.get(c)
            if d is None:
                d = len(dense)
                dense[c] = d
            mapped[v] = d
        num_coarse = len(dense)

    weights = [0.0] * num_coarse
    for v in range(n):
        weights[mapped[v]] += vwt[v]

    # ----- project nets, dedup pins, merge identical nets -------------
    # Stage 1: project every net through the cluster map, deduping pins
    # with the stamped buffer; keep (sorted pin tuple, original net id).
    m = hypergraph.num_nets
    ws.ensure(num_coarse, 0)
    stamp, nbrs = ws.stamp, ws.nbrs
    keys: List[Tuple[int, ...]] = []
    orig: List[int] = []
    keys_append = keys.append
    orig_append = orig.append
    dropped = 0
    epoch = ws.epoch
    for e in range(m):
        epoch += 1
        cnt = 0
        for i in range(net_ptr[e], net_ptr[e + 1]):
            c = mapped[net_pins[i]]
            if stamp[c] != epoch:
                stamp[c] = epoch
                nbrs[cnt] = c
                cnt += 1
        if cnt < 2:
            dropped += 1
            continue
        pins = nbrs[:cnt]
        pins.sort()
        keys_append(tuple(pins))
        orig_append(e)
    ws.epoch = epoch

    # Stage 2: one stable sort groups identical nets.  Stability means
    # equal keys keep ascending original net order, so the group head is
    # the seed dict's first occurrence and weights accumulate in the
    # seed's order.  Groups are emitted in order of their head's
    # original net id — the seed's coarse net order.
    kept = len(keys)
    by_key = sorted(range(kept), key=keys.__getitem__)
    groups: List[Tuple[int, List[int]]] = []  # (head orig id, member idxs)
    i = 0
    while i < kept:
        j = i + 1
        k = keys[by_key[i]]
        while j < kept and keys[by_key[j]] == k:
            j += 1
        groups.append((orig[by_key[i]], by_key[i:j]))
        i = j
    groups.sort()

    coarse_net_ptr = [0] * (len(groups) + 1)
    coarse_pins: List[int] = []
    coarse_net_weights: List[float] = []
    merged = 0
    for g, (_, members) in enumerate(groups):
        coarse_pins.extend(keys[members[0]])
        coarse_net_ptr[g + 1] = len(coarse_pins)
        w = net_weights[orig[members[0]]]
        for t in range(1, len(members)):
            w += net_weights[orig[members[t]]]
            merged += 1
        coarse_net_weights.append(w)

    coarse = Hypergraph.from_csr(
        coarse_net_ptr,
        coarse_pins,
        num_vertices=num_coarse,
        vertex_weights=weights,
        net_weights=coarse_net_weights,
    )
    if perf is not None:
        perf.coarsen_nets_projected += m
        perf.coarsen_nets_merged += merged
        perf.coarsen_nets_dropped += dropped
        perf.coarsen_seconds += time.perf_counter() - t0
    return CoarseLevel(fine=hypergraph, coarse=coarse, cluster_of=mapped)


def _coarsen_kernel(
    hypergraph: Hypergraph,
    cluster_of: List[int],
    ks,
    perf: Optional[PerfCounters],
    t0: float,
) -> Optional[CoarseLevel]:
    """Contract through a compiled backend kernel (bit-identical)."""
    from repro.backends.flatcache import flat_csr

    net_ptr, net_pins, _, _, vwt, net_w = flat_csr(hypergraph)
    n = hypergraph.num_vertices
    m = hypergraph.num_nets
    cluster_np = _np.array(cluster_of, dtype=_np.int64)
    mapped = _np.zeros(n, dtype=_np.int64)
    weights = _np.zeros(n, dtype=_np.float64)
    coarse_net_ptr = _np.zeros(m + 1, dtype=_np.int64)
    coarse_pins = _np.zeros(net_pins.shape[0], dtype=_np.int64)
    coarse_net_w = _np.zeros(m, dtype=_np.float64)
    out = _np.zeros(6, dtype=_np.int64)
    ks.contract(
        net_ptr, net_pins, cluster_np, vwt, net_w,
        mapped, weights, coarse_net_ptr, coarse_pins, coarse_net_w, out,
    )
    if out[5]:
        v = int(out[0])
        raise ValueError(
            f"vertex {v} has negative cluster id {cluster_of[v]}"
        )
    num_coarse = int(out[0])
    num_groups = int(out[1])
    cpos = int(out[2])
    coarse = Hypergraph.from_csr(
        coarse_net_ptr[: num_groups + 1].tolist(),
        coarse_pins[:cpos].tolist(),
        num_vertices=num_coarse,
        vertex_weights=weights[:num_coarse].tolist(),
        net_weights=coarse_net_w[:num_groups].tolist(),
    )
    if perf is not None:
        perf.coarsen_nets_projected += m
        perf.coarsen_nets_merged += int(out[3])
        perf.coarsen_nets_dropped += int(out[4])
        perf.coarsen_seconds += time.perf_counter() - t0
    return CoarseLevel(
        fine=hypergraph, coarse=coarse, cluster_of=mapped.tolist()
    )
