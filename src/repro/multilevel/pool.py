"""Seeded hierarchy pooling: reuse coarsening work across multistart.

``MLPartitioner.partition`` historically rebuilt the full coarsening
hierarchy for every start, so ``num_starts`` starts paid ``num_starts``
complete re-coarsenings of the same hypergraph.  KaHyPar-style engines
amortize this: coarsening hierarchies depend only on the hypergraph and
the coarsening RNG, so a small pool of K precomputed hierarchies can
serve any number of starts.

**Pooling semantics (what is shared vs. per-start).**  A pooled run
derives two *independent* RNG streams:

* hierarchy ``j`` of the pool is built with
  ``random.Random(hierarchy_seed(base_seed, j))`` and consumes coarsening
  randomness only (the matching visit orders);
* start ``i`` draws hierarchy ``i % K`` from the pool and uses
  ``random.Random(base_seed + i)`` exclusively for initial partitioning
  and refinement.

Because the streams are split, a *serial* run that rebuilds hierarchy
``i % K`` from scratch for every start produces **bit-identical per-start
records** to the pooled run — the pool changes where the hierarchy comes
from, never what it is.  ``repro bench ml`` exploits exactly this
equivalence: its baseline rebuilds per start with the frozen seed
coarsening oracle, its subject draws from a kernel-built pool, and the
per-start cuts must match exactly while only the wall-clock differs.

V-cycles are *not* pooled: restricted matching depends on the current
assignment, so V-cycle coarsening is inherently per-start (it still uses
the allocation-free kernel).
"""

from __future__ import annotations

import inspect
import random
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.multistart import MultistartResult, StartRecord
from repro.core.perf import PerfCounters
from repro.hypergraph.hypergraph import Hypergraph
from repro.multilevel import _seed_coarsen as _oracle
from repro.multilevel.coarsen import coarsen
from repro.multilevel.matching import (
    first_choice_clustering,
    heavy_edge_matching,
    hyperedge_coarsening,
)

#: Seed offset between pooled hierarchies.  Pure integer arithmetic on
#: purpose: seeding ``random.Random`` with tuples or strings hashes
#: them, and string hashing is randomized per process — which would
#: silently break cross-process reproducibility (the orchestrator runs
#: trials in worker processes).
_HIERARCHY_SEED_STRIDE = 1_000_003


def hierarchy_seed(base_seed: int, j: int) -> int:
    """Seed for pooled hierarchy ``j`` under multistart seed ``base_seed``.

    Deliberately disjoint from the per-start seeds ``base_seed + i`` for
    any realistic start count, so coarsening randomness and refinement
    randomness are never correlated.
    """
    return base_seed + _HIERARCHY_SEED_STRIDE * (j + 1)


def supports_hierarchy(partitioner) -> bool:
    """True when ``partitioner`` can draw from a :class:`HierarchyPool`.

    Two requirements: ``partition()`` must accept a ``hierarchy``
    keyword, and the partitioner must expose the coarsening ``config``
    (``clustering`` / ``coarsest_size`` / ``min_reduction``) a pool
    needs to build hierarchies on its behalf.  The orchestrator's
    sticky per-worker caches use this probe to decide which heuristics
    get pooled coarsening — flat partitioners and user-supplied duck
    types simply run unpooled.
    """
    partition = getattr(partitioner, "partition", None)
    if partition is None:
        return False
    try:
        sig = inspect.signature(partition)
    except (TypeError, ValueError):  # builtins / odd callables
        return False
    if "hierarchy" not in sig.parameters:
        return False
    config = getattr(partitioner, "config", None)
    return all(
        hasattr(config, attr)
        for attr in ("clustering", "coarsest_size", "min_reduction")
    )


@dataclass
class Hierarchy:
    """One fully-built coarsening hierarchy, reusable across starts.

    Attributes
    ----------
    hypergraph:
        The finest (original) hypergraph.
    levels:
        ``(CoarseLevel, fine_fixed_parts)`` pairs from finest to
        coarsest, exactly as ``MLPartitioner`` consumes them.
    coarsest:
        The coarsest hypergraph (equals ``hypergraph`` when no level
        passed the reduction guard).
    coarsest_fixed:
        Fixed-side constraints projected onto the coarsest level.
    fixed_signature:
        Canonical form of the ``fixed_parts`` the hierarchy was built
        under; ``partition(hierarchy=...)`` validates against it.
    seed:
        The hierarchy seed it was built from (``None`` when built from a
        caller-supplied RNG).
    oracle:
        True when built with the frozen seed coarsening oracle.
    """

    hypergraph: Hypergraph
    levels: List[Tuple[object, Optional[List[Optional[int]]]]]
    coarsest: Hypergraph
    coarsest_fixed: Optional[List[Optional[int]]]
    fixed_signature: Optional[Tuple[Optional[int], ...]] = None
    seed: Optional[int] = None
    oracle: bool = False

    @property
    def num_levels(self) -> int:
        return len(self.levels)


def project_fixed(level, fixed) -> Optional[List[Optional[int]]]:
    """Project per-vertex fixed sides through one coarsening level."""
    if fixed is None:
        return None
    coarse_fixed: List[Optional[int]] = [None] * level.coarse.num_vertices
    cluster_of = level.cluster_of
    for v, side in enumerate(fixed):
        if side is not None:
            coarse_fixed[cluster_of[v]] = side
    return coarse_fixed


def config_backend(config) -> Optional[str]:
    """Kernel-backend request carried by a coarsening ``config``.

    ``fm_config.backend`` wins over the multilevel-level ``backend`` —
    the same precedence :class:`~repro.multilevel.mlpart.MLPartitioner`
    applies — so pooled and standalone builds resolve identically.
    Configs that predate the backend registry simply resolve to
    ``None`` (process default).
    """
    fm = getattr(config, "fm_config", None)
    backend = getattr(fm, "backend", None)
    if backend is None:
        backend = getattr(config, "backend", None)
    return backend


def _cluster_fn(clustering: str, oracle: bool):
    if oracle:
        table = {
            "first_choice": _oracle.seed_first_choice_clustering,
            "hyperedge": _oracle.seed_hyperedge_coarsening,
            "heavy_edge": _oracle.seed_heavy_edge_matching,
        }
    else:
        table = {
            "first_choice": first_choice_clustering,
            "hyperedge": hyperedge_coarsening,
            "heavy_edge": heavy_edge_matching,
        }
    try:
        return table[clustering]
    except KeyError:
        raise ValueError(f"unknown clustering scheme {clustering!r}") from None


def build_hierarchy(
    hypergraph: Hypergraph,
    config,
    rng: random.Random,
    fixed_parts: Optional[Sequence[Optional[int]]] = None,
    oracle: bool = False,
    perf: Optional[PerfCounters] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> Hierarchy:
    """Coarsen ``hypergraph`` until small; returns the full hierarchy.

    ``config`` supplies ``coarsest_size``, ``min_reduction`` and
    ``clustering`` (an :class:`~repro.multilevel.mlpart.MLConfig` or any
    object with those attributes).  ``oracle=True`` uses the frozen seed
    matching/contraction code instead of the kernels — the reference
    path the equivalence tests and ``repro bench ml`` compare against.
    ``backend`` selects the kernel backend for matching/contraction
    (``None`` reads it off ``config`` via :func:`config_backend`);
    every backend is bit-identical, so the hierarchy never depends on
    it.

    Coarsening stops at ``coarsest_size``, when a level shrinks by less
    than ``min_reduction``, or — the stall guard — when a level fails to
    shrink *at all*, which guards configurations with
    ``min_reduction <= 1.0`` against looping forever on clique-like
    instances where matching cannot pair anything.
    """
    t0 = time.perf_counter() if perf is not None else 0.0
    cluster_fn = _cluster_fn(config.clustering, oracle)
    contract = _oracle.seed_coarsen if oracle else coarsen
    if backend is None:
        backend = config_backend(config)
    levels: List[Tuple[object, Optional[List[Optional[int]]]]] = []
    hg = hypergraph
    # Truthiness (not None-ness) on purpose: MLPartitioner.partition
    # treats an empty fixed_parts as "no fixed vertices", and the
    # fixed-signature validation must agree with it.
    fixed = list(fixed_parts) if fixed_parts else None
    while hg.num_vertices > config.coarsest_size:
        if oracle:
            cluster = cluster_fn(hg, rng, fixed_parts=fixed)
            level = contract(hg, cluster)
        else:
            cluster = cluster_fn(
                hg, rng, fixed_parts=fixed, perf=perf, backend=backend
            )
            level = contract(hg, cluster, perf=perf, backend=backend)
        if level.coarse.num_vertices >= hg.num_vertices:
            break  # stall: no progress at all (see docstring)
        if level.coarse.num_vertices > hg.num_vertices / config.min_reduction:
            break
        coarse_fixed = project_fixed(level, fixed)
        levels.append((level, fixed))
        if perf is not None:
            perf.coarsen_levels += 1
        hg = level.coarse
        fixed = coarse_fixed
    if perf is not None:
        perf.coarsen_seconds += time.perf_counter() - t0
        perf.hierarchies_built += 1
    return Hierarchy(
        hypergraph=hypergraph,
        levels=levels,
        coarsest=hg,
        coarsest_fixed=fixed,
        fixed_signature=tuple(fixed_parts) if fixed_parts else None,
        seed=seed,
        oracle=oracle,
    )


class HierarchyPool:
    """K lazily-built, seeded coarsening hierarchies for one hypergraph.

    ``get(i)`` returns hierarchy ``i % size``, building it on first use
    with ``random.Random(hierarchy_seed(base_seed, i % size))``.  Lazy
    construction means a pool sized larger than the actual start count
    never builds unused hierarchies.

    ``get`` is safe under concurrent callers (in-run workers racing for
    the same slot): a double-checked build lock guarantees exactly one
    build per slot, so ``num_built`` and the perf counters never count a
    hierarchy twice.  ``inrun_workers > 1`` builds hierarchies with the
    parallel-proposal engine (:mod:`repro.multilevel.parallel`), which
    is bit-identical to the serial build; the frozen seed oracle always
    builds serially.
    """

    def __init__(
        self,
        hypergraph: Hypergraph,
        config,
        size: int,
        base_seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
        oracle: bool = False,
        perf: Optional[PerfCounters] = None,
        inrun_workers: int = 1,
        backend: Optional[str] = None,
    ) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        if inrun_workers < 1:
            raise ValueError("inrun_workers must be >= 1")
        self.hypergraph = hypergraph
        self.config = config
        self.size = size
        self.base_seed = base_seed
        self.fixed_parts = list(fixed_parts) if fixed_parts else None
        self.oracle = oracle
        self.perf = perf if perf is not None else PerfCounters()
        self.inrun_workers = inrun_workers
        self.backend = backend if backend is not None else config_backend(config)
        self._hierarchies: List[Optional[Hierarchy]] = [None] * size
        self._build_lock = threading.Lock()

    def _build(self, j: int) -> Hierarchy:
        seed = hierarchy_seed(self.base_seed, j)
        rng = random.Random(seed)
        if self.inrun_workers > 1 and not self.oracle:
            from repro.multilevel.parallel import (
                build_hierarchy_parallel,
                clamp_inrun_workers,
                get_inrun_pool,
            )

            effective = clamp_inrun_workers(self.inrun_workers)
            if effective > 1:
                return build_hierarchy_parallel(
                    self.hypergraph,
                    self.config,
                    rng,
                    get_inrun_pool(effective),
                    fixed_parts=self.fixed_parts,
                    perf=self.perf,
                    seed=seed,
                    backend=self.backend,
                )
        return build_hierarchy(
            self.hypergraph,
            self.config,
            rng,
            fixed_parts=self.fixed_parts,
            oracle=self.oracle,
            perf=self.perf,
            seed=seed,
            backend=self.backend,
        )

    def get(self, start_index: int) -> Hierarchy:
        """Hierarchy serving start ``start_index`` (built on demand)."""
        j = start_index % self.size
        h = self._hierarchies[j]
        if h is not None:
            self.perf.hierarchies_reused += 1
            return h
        with self._build_lock:
            h = self._hierarchies[j]
            if h is not None:  # lost the race: someone built it already
                self.perf.hierarchies_reused += 1
                return h
            h = self._build(j)
            self._hierarchies[j] = h
        return h

    @property
    def num_built(self) -> int:
        return sum(1 for h in self._hierarchies if h is not None)

    def __len__(self) -> int:
        return self.size


def run_multistart_pooled(
    partitioner,
    hypergraph: Hypergraph,
    num_starts: int,
    instance_name: str = "",
    base_seed: int = 0,
    pool_size: int = 2,
    fixed_parts: Optional[Sequence[Optional[int]]] = None,
    pool: Optional[HierarchyPool] = None,
    workers: int = 1,
) -> MultistartResult:
    """Multistart driver drawing hierarchies from a seeded pool.

    Mirrors :func:`repro.core.multistart.run_multistart` — same seeds,
    same record stream — but start ``i`` partitions on pooled hierarchy
    ``i % pool_size`` instead of re-coarsening.  ``partitioner`` must
    accept a ``hierarchy`` keyword (i.e. be an
    :class:`~repro.multilevel.mlpart.MLPartitioner`).

    A pre-built ``pool`` may be supplied (it must match ``hypergraph``);
    otherwise one is created from ``partitioner.config``.

    ``workers > 1`` fans the starts out across the persistent in-run
    worker pool (:mod:`repro.multilevel.parallel`); the record stream is
    bit-identical to the serial loop — only wall-clock changes.  The
    serial path is used when a pre-built ``pool`` is supplied (its
    hierarchies live in this process) or when fair-share clamping says
    so (e.g. inside a daemonic campaign worker).
    """
    if num_starts < 1:
        raise ValueError("num_starts must be >= 1")
    if workers > 1 and pool is None:
        from repro.multilevel.parallel import (
            clamp_inrun_workers,
            get_inrun_pool,
            run_starts_pooled,
        )

        effective = clamp_inrun_workers(workers)
        if effective > 1:
            return run_starts_pooled(
                get_inrun_pool(effective),
                partitioner,
                hypergraph,
                num_starts,
                instance_name=instance_name,
                base_seed=base_seed,
                pool_size=pool_size,
                fixed_parts=fixed_parts,
                perf=getattr(partitioner, "perf", None),
            )
    if pool is None:
        pool = HierarchyPool(
            hypergraph,
            partitioner.config,
            pool_size,
            base_seed=base_seed,
            fixed_parts=fixed_parts,
            oracle=getattr(partitioner, "oracle", False),
            backend=getattr(partitioner, "backend", None),
        )
    elif pool.hypergraph is not hypergraph:
        raise ValueError("pool was built for a different hypergraph")
    result = MultistartResult(
        heuristic=getattr(partitioner, "name", type(partitioner).__name__),
        instance=instance_name,
    )
    best_cut = float("inf")
    for i in range(num_starts):
        seed = base_seed + i
        t0 = time.perf_counter()
        out = partitioner.partition(
            hypergraph,
            seed=seed,
            fixed_parts=fixed_parts,
            hierarchy=pool.get(i),
        )
        elapsed = time.perf_counter() - t0
        result.starts.append(
            StartRecord(
                seed=seed,
                cut=out.cut,
                runtime_seconds=elapsed,
                legal=out.legal,
            )
        )
        if out.cut < best_cut:
            best_cut = out.cut
            result.best_assignment = list(out.assignment)
    return result
