"""Frozen seed implementation of matching + contraction (test oracle).

This module is a verbatim copy of ``repro.multilevel.matching`` and
``repro.multilevel.coarsen`` as they stood before the allocation-free
coarsening kernel rewrite.  It exists for the same reason
``repro.core._seed_engine`` does: the kernel's correctness claim is
*exact behavioural equivalence* — identical cluster maps, identical
coarse hypergraphs (same net order, same pin order, same float weight
accumulation), identical RNG stream consumption — and that claim is only
testable against an implementation that is guaranteed never to change.

Do not "improve" this module — its value is that it does not change.
The dict-based connectivity accumulation, the dict-of-tuples net dedup,
and the first-encounter cluster renumbering are the reference semantics
the kernel must reproduce bit for bit.

``tests/test_coarsen_equivalence.py`` runs the kernel against these
functions across every clustering scheme, cap/net-size setting, fixed
vertex layout, and hypothesis-fuzzed instance; ``repro bench ml`` times
the kernel against this oracle end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hypergraph.hypergraph import Hypergraph


def _connectivity_to_neighbors(
    hypergraph: Hypergraph,
    v: int,
    max_net_size: int,
) -> Dict[int, float]:
    """Map of neighbour -> summed connectivity weight for vertex ``v``."""
    conn: Dict[int, float] = {}
    for e in hypergraph.nets_of(v):
        size = hypergraph.net_size(e)
        if size < 2 or size > max_net_size:
            continue
        w = hypergraph.net_weight(e) / (size - 1)
        for u in hypergraph.pins_of(e):
            if u != v:
                conn[u] = conn.get(u, 0.0) + w
    return conn


def seed_heavy_edge_matching(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """Heavy-edge matching; returns a cluster id per vertex."""
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    for v in order:
        if cluster[v] != -1:
            continue
        best_u = -1
        best_c = 0.0
        wv = hypergraph.vertex_weight(v)
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            if cluster[u] != -1:
                continue
            if wv + hypergraph.vertex_weight(u) > max_cluster_weight:
                continue
            if fixed_parts is not None and _fixed_conflict(fixed_parts, v, u):
                continue
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    return cluster


def seed_first_choice_clustering(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """First-choice clustering; returns a cluster id per vertex."""
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    cluster_weight: List[float] = []
    cluster_fixed: List[Optional[int]] = []
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        if cluster[v] != -1:
            continue
        wv = hypergraph.vertex_weight(v)
        fv = fixed_parts[v] if fixed_parts is not None else None
        best_cluster = -1
        best_c = 0.0
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            cu = cluster[u]
            if cu == -1:
                continue
            if cluster_weight[cu] + wv > max_cluster_weight:
                continue
            cf = cluster_fixed[cu]
            if fv is not None and cf is not None and fv != cf:
                continue
            if c > best_c:
                best_c = c
                best_cluster = cu
        if best_cluster == -1:
            cluster[v] = len(cluster_weight)
            cluster_weight.append(wv)
            cluster_fixed.append(fv)
        else:
            cluster[v] = best_cluster
            cluster_weight[best_cluster] += wv
            if fv is not None:
                cluster_fixed[best_cluster] = fv
    return cluster


def seed_hyperedge_coarsening(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """hMetis-style hyperedge coarsening (HEC); returns cluster ids."""
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(hypergraph.nets())
    rng.shuffle(order)
    order.sort(
        key=lambda e: (-hypergraph.net_weight(e), hypergraph.net_size(e))
    )
    next_id = 0
    for e in order:
        size = hypergraph.net_size(e)
        if size < 2 or size > max_net_size:
            continue
        pins = hypergraph.pins_of(e)
        if any(cluster[v] != -1 for v in pins):
            continue
        total = sum(hypergraph.vertex_weight(v) for v in pins)
        if total > max_cluster_weight:
            continue
        if fixed_parts is not None:
            sides = {
                fixed_parts[v] for v in pins if fixed_parts[v] is not None
            }
            if len(sides) > 1:
                continue
        for v in pins:
            cluster[v] = next_id
        next_id += 1
    for v in range(n):
        if cluster[v] == -1:
            cluster[v] = next_id
            next_id += 1
    return cluster


def seed_restricted_matching(
    hypergraph: Hypergraph,
    assignment: List[int],
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
) -> List[int]:
    """Partition-respecting matching for V-cycling (Karypis et al.)."""
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    for v in order:
        if cluster[v] != -1:
            continue
        best_u = -1
        best_c = 0.0
        wv = hypergraph.vertex_weight(v)
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            if cluster[u] != -1 or assignment[u] != assignment[v]:
                continue
            if wv + hypergraph.vertex_weight(u) > max_cluster_weight:
                continue
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    return cluster


def _default_cluster_cap(hypergraph: Hypergraph) -> float:
    """Default cluster-weight cap: 4x the average vertex weight, but at
    least the largest existing vertex (macros must stay placeable)."""
    n = max(hypergraph.num_vertices, 1)
    avg = hypergraph.total_vertex_weight / n
    biggest = max(
        (hypergraph.vertex_weight(v) for v in hypergraph.vertices()),
        default=1.0,
    )
    return max(4.0 * avg, biggest)


def _fixed_conflict(
    fixed_parts: List[Optional[int]], v: int, u: int
) -> bool:
    fv, fu = fixed_parts[v], fixed_parts[u]
    return fv is not None and fu is not None and fv != fu


# ----------------------------------------------------------------------
# Frozen contraction (the pre-kernel ``coarsen``).
# ----------------------------------------------------------------------


@dataclass
class SeedCoarseLevel:
    """One level of the coarsening hierarchy (frozen layout)."""

    fine: Hypergraph
    coarse: Hypergraph
    cluster_of: List[int]

    def project_assignment(self, coarse_assignment: List[int]) -> List[int]:
        """Lift a coarse assignment to the fine hypergraph."""
        return [coarse_assignment[self.cluster_of[v]] for v in
                range(self.fine.num_vertices)]


def seed_coarsen(hypergraph: Hypergraph, cluster_of: List[int]) -> SeedCoarseLevel:
    """Contract ``hypergraph`` according to ``cluster_of`` (frozen)."""
    n = hypergraph.num_vertices
    if len(cluster_of) != n:
        raise ValueError("cluster_of length mismatch")

    dense: Dict[int, int] = {}
    mapped = [0] * n
    for v in range(n):
        c = cluster_of[v]
        if c < 0:
            raise ValueError(f"vertex {v} has negative cluster id {c}")
        d = dense.get(c)
        if d is None:
            d = len(dense)
            dense[c] = d
        mapped[v] = d
    num_coarse = len(dense)

    weights = [0.0] * num_coarse
    for v in range(n):
        weights[mapped[v]] += hypergraph.vertex_weight(v)

    # Project nets; merge identical coarse nets by pin-tuple key.
    net_index: Dict[Tuple[int, ...], int] = {}
    coarse_nets: List[List[int]] = []
    coarse_net_weights: List[float] = []
    for e in range(hypergraph.num_nets):
        pins = sorted({mapped[v] for v in hypergraph.pins_of(e)})
        if len(pins) < 2:
            continue
        key = tuple(pins)
        idx = net_index.get(key)
        if idx is None:
            net_index[key] = len(coarse_nets)
            coarse_nets.append(pins)
            coarse_net_weights.append(hypergraph.net_weight(e))
        else:
            coarse_net_weights[idx] += hypergraph.net_weight(e)

    coarse = Hypergraph(
        coarse_nets,
        num_vertices=num_coarse,
        vertex_weights=weights,
        net_weights=coarse_net_weights,
    )
    return SeedCoarseLevel(fine=hypergraph, coarse=coarse, cluster_of=mapped)
