"""Clustering/matching schemes for multilevel coarsening.

Two standard schemes:

* :func:`heavy_edge_matching` — pairwise matching maximizing hyperedge
  connectivity (each net of size ``s`` contributes ``w/(s-1)`` to each
  pin pair), the scheme popularized by METIS/hMetis.
* :func:`first_choice_clustering` — hMetis-style FC clustering: vertices
  may join already-formed clusters, giving stronger size reduction per
  level.

Both respect a cluster-weight cap so coarsening cannot manufacture
unbalanceable coarse vertices, and both skip very large nets (clock-like
nets carry no clustering signal and would make matching quadratic).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.hypergraph.hypergraph import Hypergraph


def _connectivity_to_neighbors(
    hypergraph: Hypergraph,
    v: int,
    max_net_size: int,
) -> Dict[int, float]:
    """Map of neighbour -> summed connectivity weight for vertex ``v``."""
    conn: Dict[int, float] = {}
    for e in hypergraph.nets_of(v):
        size = hypergraph.net_size(e)
        if size < 2 or size > max_net_size:
            continue
        w = hypergraph.net_weight(e) / (size - 1)
        for u in hypergraph.pins_of(e):
            if u != v:
                conn[u] = conn.get(u, 0.0) + w
    return conn


def heavy_edge_matching(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """Heavy-edge matching; returns a cluster id per vertex.

    Vertices are visited in random order; each unmatched vertex picks
    its unmatched neighbour with maximum connectivity whose combined
    weight stays below ``max_cluster_weight``.  Unmatchable vertices
    become singleton clusters.  When ``fixed_parts`` is given, vertices
    fixed to different sides are never merged (a merged cluster could
    not respect both constraints).
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    for v in order:
        if cluster[v] != -1:
            continue
        best_u = -1
        best_c = 0.0
        wv = hypergraph.vertex_weight(v)
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            if cluster[u] != -1:
                continue
            if wv + hypergraph.vertex_weight(u) > max_cluster_weight:
                continue
            if fixed_parts is not None and _fixed_conflict(fixed_parts, v, u):
                continue
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    return cluster


def first_choice_clustering(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """First-choice clustering; returns a cluster id per vertex.

    Like heavy-edge matching, but a vertex may join the cluster of an
    already-clustered neighbour, so clusters can exceed size two.  This
    is the scheme hMetis 1.5 uses by default.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    cluster_weight: List[float] = []
    cluster_fixed: List[Optional[int]] = []
    order = list(range(n))
    rng.shuffle(order)
    for v in order:
        if cluster[v] != -1:
            continue
        wv = hypergraph.vertex_weight(v)
        fv = fixed_parts[v] if fixed_parts is not None else None
        best_cluster = -1
        best_c = 0.0
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            cu = cluster[u]
            if cu == -1:
                continue
            if cluster_weight[cu] + wv > max_cluster_weight:
                continue
            cf = cluster_fixed[cu]
            if fv is not None and cf is not None and fv != cf:
                continue
            if c > best_c:
                best_c = c
                best_cluster = cu
        if best_cluster == -1:
            cluster[v] = len(cluster_weight)
            cluster_weight.append(wv)
            cluster_fixed.append(fv)
        else:
            cluster[v] = best_cluster
            cluster_weight[best_cluster] += wv
            if fv is not None:
                cluster_fixed[best_cluster] = fv
    return cluster


def hyperedge_coarsening(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> List[int]:
    """hMetis-style hyperedge coarsening (HEC); returns cluster ids.

    Nets are visited heaviest-first (ties: smaller first, then random
    order); a net all of whose pins are still unclustered is contracted
    into a single cluster, provided the merged weight respects the cap
    and no two pins are fixed to different sides.  Leftover vertices
    become singletons.  Entire small nets vanish at once, which is HEC's
    advantage over pairwise matching on netlists dominated by 2-3 pin
    nets.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(hypergraph.nets())
    rng.shuffle(order)
    order.sort(
        key=lambda e: (-hypergraph.net_weight(e), hypergraph.net_size(e))
    )
    next_id = 0
    for e in order:
        size = hypergraph.net_size(e)
        if size < 2 or size > max_net_size:
            continue
        pins = hypergraph.pins_of(e)
        if any(cluster[v] != -1 for v in pins):
            continue
        total = sum(hypergraph.vertex_weight(v) for v in pins)
        if total > max_cluster_weight:
            continue
        if fixed_parts is not None:
            sides = {
                fixed_parts[v] for v in pins if fixed_parts[v] is not None
            }
            if len(sides) > 1:
                continue
        for v in pins:
            cluster[v] = next_id
        next_id += 1
    for v in range(n):
        if cluster[v] == -1:
            cluster[v] = next_id
            next_id += 1
    return cluster


def restricted_matching(
    hypergraph: Hypergraph,
    assignment: List[int],
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
) -> List[int]:
    """Partition-respecting matching for V-cycling (Karypis et al.).

    Identical to heavy-edge matching except that only vertices on the
    *same side* of ``assignment`` may merge, so the current solution
    projects exactly onto the coarse hypergraph.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    for v in order:
        if cluster[v] != -1:
            continue
        best_u = -1
        best_c = 0.0
        wv = hypergraph.vertex_weight(v)
        for u, c in _connectivity_to_neighbors(hypergraph, v, max_net_size).items():
            if cluster[u] != -1 or assignment[u] != assignment[v]:
                continue
            if wv + hypergraph.vertex_weight(u) > max_cluster_weight:
                continue
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    return cluster


def _default_cluster_cap(hypergraph: Hypergraph) -> float:
    """Default cluster-weight cap: 4x the average vertex weight, but at
    least the largest existing vertex (macros must stay placeable)."""
    n = max(hypergraph.num_vertices, 1)
    avg = hypergraph.total_vertex_weight / n
    biggest = max(
        (hypergraph.vertex_weight(v) for v in hypergraph.vertices()),
        default=1.0,
    )
    return max(4.0 * avg, biggest)


def _fixed_conflict(
    fixed_parts: List[Optional[int]], v: int, u: int
) -> bool:
    fv, fu = fixed_parts[v], fixed_parts[u]
    return fv is not None and fu is not None and fv != fu
