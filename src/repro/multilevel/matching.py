"""Clustering/matching schemes for multilevel coarsening (kernel).

Two standard schemes:

* :func:`heavy_edge_matching` — pairwise matching maximizing hyperedge
  connectivity (each net of size ``s`` contributes ``w/(s-1)`` to each
  pin pair), the scheme popularized by METIS/hMetis.
* :func:`first_choice_clustering` — hMetis-style FC clustering: vertices
  may join already-formed clusters, giving stronger size reduction per
  level.

Both respect a cluster-weight cap so coarsening cannot manufacture
unbalanceable coarse vertices, and both skip very large nets (clock-like
nets carry no clustering signal and would make matching quadratic).

**Kernel engineering.**  The original (seed) implementation built a
fresh ``dict`` of neighbour connectivities for every vertex — one hash
insert per (vertex, net, other-pin) triple, the dominant coarsening
cost.  This module is the allocation-free rewrite: neighbour
connectivities accumulate into flat *epoch-stamped* scratch arrays
(:class:`_Workspace`) that are reused across vertices, levels, and
hypergraphs, with per-net connectivity scores precomputed once per call.
The scratch is a module-level singleton sized to the largest instance
seen, so repeated coarsening (multistart pools, V-cycles) touches no
allocator at all.

The rewrite is *behaviourally identical* to the frozen seed oracle
(``repro.multilevel._seed_coarsen``): identical cluster maps, identical
RNG stream consumption (one ``rng.shuffle`` per call), identical float
accumulation order, and identical tie-breaking — including the subtle
invariant that a zero-weight eligible net still inserts its pins into
the neighbour set (the insertion *order* side effect the seed dict had).
``tests/test_coarsen_equivalence.py`` enforces all of this.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.perf import PerfCounters
from repro.hypergraph.hypergraph import Hypergraph

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


def _kernels(backend: Optional[str]):
    """Resolve a backend request to a KernelSet (None = interpreted)."""
    if _np is None:
        return None
    from repro.backends import active_kernels

    return active_kernels(backend)[1]


def _kernel_prep(hypergraph: Hypergraph, max_net_size: int, ks):
    """Flat CSR arrays plus per-net scores for the matching kernels."""
    from repro.backends.flatcache import flat_csr

    net_ptr, net_pins, vtx_ptr, vtx_nets, vwt, net_w = flat_csr(hypergraph)
    score = _np.empty(hypergraph.num_nets, dtype=_np.float64)
    ks.net_scores(net_ptr, net_w, max_net_size, score)
    return net_ptr, net_pins, vtx_ptr, vtx_nets, vwt, score


class _Workspace:
    """Flat epoch-stamped scratch shared by the matching/contraction kernels.

    One module-level instance backs every call: arrays grow monotonically
    to the largest (vertices, nets) seen and are never cleared — validity
    of an entry is ``stamp[i] == epoch``, and :meth:`bump` starting a new
    epoch invalidates everything in O(1).  Newly grown regions carry
    stamp 0, which is always stale because the epoch counter starts at 1
    and only increases.

    The arrays:

    * ``conn`` / ``stamp`` / ``nbrs`` — neighbour-connectivity
      accumulator: ``conn[u]`` is valid iff ``stamp[u] == epoch``;
      ``nbrs[:k]`` lists the stamped neighbours in first-encounter order
      (the seed dict's iteration order).
    * ``score`` — per-net connectivity score ``w/(size-1)``, with -1.0
      marking nets ineligible for matching (size < 2 or > max_net_size).
      Recomputed per call: eligibility depends on ``max_net_size``.
    * ``remap`` (with ``stamp2``) — cluster-id renumbering scratch for
      :func:`repro.multilevel.coarsen.coarsen`.
    * ``pin_buf`` — per-net projected-pin dedup buffer (size ≥ the
      largest net).
    """

    __slots__ = (
        "conn",
        "stamp",
        "nbrs",
        "score",
        "remap",
        "stamp2",
        "pin_buf",
        "epoch",
        "epoch2",
    )

    def __init__(self) -> None:
        self.conn: List[float] = []
        self.stamp: List[int] = []
        self.nbrs: List[int] = []
        self.score: List[float] = []
        self.remap: List[int] = []
        self.stamp2: List[int] = []
        self.pin_buf: List[int] = []
        self.epoch = 0
        self.epoch2 = 0

    def ensure(self, num_vertices: int, num_nets: int) -> None:
        """Grow the per-vertex / per-net arrays to the required size."""
        short = num_vertices - len(self.conn)
        if short > 0:
            self.conn.extend([0.0] * short)
            self.stamp.extend([0] * short)
            self.nbrs.extend([0] * short)
        short = num_nets - len(self.score)
        if short > 0:
            self.score.extend([0.0] * short)

    def ensure_remap(self, size: int) -> None:
        """Grow the cluster-renumbering arrays to ``size`` entries."""
        short = size - len(self.remap)
        if short > 0:
            self.remap.extend([0] * short)
            self.stamp2.extend([0] * short)

    def ensure_pin_buf(self, size: int) -> None:
        """Grow the projected-pin buffer to ``size`` entries."""
        short = size - len(self.pin_buf)
        if short > 0:
            self.pin_buf.extend([0] * short)

    def bump(self) -> int:
        """Start a new neighbour-accumulator epoch; returns it."""
        self.epoch += 1
        return self.epoch

    def bump2(self) -> int:
        """Start a new renumbering epoch; returns it."""
        self.epoch2 += 1
        return self.epoch2


#: The shared kernel scratch.  Module-level rather than per-hypergraph:
#: capacity-keyed reuse needs no invalidation (no stale identity/weight
#: hazards), survives across hierarchy levels and pooled multistart
#: hierarchies, and keeps ``Hypergraph`` free of unpicklable extras (the
#: orchestrator ships hypergraphs to worker processes).
_WS = _Workspace()


def _net_scores(
    hypergraph: Hypergraph, max_net_size: int, ws: _Workspace
) -> List[float]:
    """Fill ``ws.score`` with per-net connectivity scores.

    ``w/(size-1)`` for matchable nets, -1.0 for ineligible ones.  A
    zero-weight eligible net scores 0.0 — it cannot win a comparison but
    must still enter its pins into the neighbour set, because the seed
    semantics let such nets extend the candidate order.
    """
    net_ptr = hypergraph.raw_csr[0]
    net_weights = hypergraph._net_weights
    score = ws.score
    for e in range(hypergraph.num_nets):
        size = net_ptr[e + 1] - net_ptr[e]
        if size < 2 or size > max_net_size:
            score[e] = -1.0
        else:
            score[e] = net_weights[e] / (size - 1)
    return score


def heavy_edge_matching(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """Heavy-edge matching; returns a cluster id per vertex.

    Vertices are visited in random order; each unmatched vertex picks
    its unmatched neighbour with maximum connectivity whose combined
    weight stays below ``max_cluster_weight``.  Unmatchable vertices
    become singleton clusters.  When ``fixed_parts`` is given, vertices
    fixed to different sides are never merged (a merged cluster could
    not respect both constraints).
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    ks = _kernels(backend)
    if ks is not None:
        # The RNG draw stays on the Python side (one shuffle, exactly as
        # below) so every backend consumes the same stream; the kernel
        # replays the selection loop over the shuffled order.
        from repro.backends.flatcache import encode_fixed

        k_np, k_pins, k_vp, k_vn, k_vwt, score = _kernel_prep(
            hypergraph, max_net_size, ks
        )
        order_np = _np.arange(n, dtype=_np.int64)
        order_l = order_np.tolist()
        rng.shuffle(order_l)
        order_np[:] = order_l
        use_fixed = 1 if fixed_parts is not None else 0
        fixed = (encode_fixed(fixed_parts, n) if use_fixed
                 else _np.empty(0, dtype=_np.int64))
        cluster_np = _np.full(n, -1, dtype=_np.int64)
        out = _np.zeros(2, dtype=_np.int64)
        ks.hem_match(
            k_np, k_pins, k_vp, k_vn, k_vwt, score, order_np,
            fixed, use_fixed, 0, _np.empty(0, dtype=_np.int64),
            float(max_cluster_weight), cluster_np, out,
        )
        if perf is not None:
            perf.coarsen_neighbors_touched += int(out[1])
        return cluster_np.tolist()
    net_ptr, net_pins, vtx_ptr, vtx_nets = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    ws = _WS
    ws.ensure(n, hypergraph.num_nets)
    score = _net_scores(hypergraph, max_net_size, ws)
    conn, stamp, nbrs = ws.conn, ws.stamp, ws.nbrs

    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    touched = 0
    for v in order:
        if cluster[v] != -1:
            continue
        epoch = ws.bump()
        ncount = 0
        for i in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[i]
            w = score[e]
            if w < 0.0:
                continue
            lo = net_ptr[e]
            hi = net_ptr[e + 1]
            touched += hi - lo - 1
            for j in range(lo, hi):
                u = net_pins[j]
                if u == v:
                    continue
                if stamp[u] == epoch:
                    conn[u] += w
                else:
                    stamp[u] = epoch
                    conn[u] = w
                    nbrs[ncount] = u
                    ncount += 1
        best_u = -1
        best_c = 0.0
        wv = vwt[v]
        for t in range(ncount):
            u = nbrs[t]
            if cluster[u] != -1:
                continue
            if wv + vwt[u] > max_cluster_weight:
                continue
            if fixed_parts is not None and _fixed_conflict(fixed_parts, v, u):
                continue
            c = conn[u]
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def first_choice_clustering(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """First-choice clustering; returns a cluster id per vertex.

    Like heavy-edge matching, but a vertex may join the cluster of an
    already-clustered neighbour, so clusters can exceed size two.  This
    is the scheme hMetis 1.5 uses by default.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    ks = _kernels(backend)
    if ks is not None:
        from repro.backends.flatcache import encode_fixed

        k_np, k_pins, k_vp, k_vn, k_vwt, score = _kernel_prep(
            hypergraph, max_net_size, ks
        )
        order_np = _np.arange(n, dtype=_np.int64)
        order_l = order_np.tolist()
        rng.shuffle(order_l)
        order_np[:] = order_l
        use_fixed = 1 if fixed_parts is not None else 0
        fixed = (encode_fixed(fixed_parts, n) if use_fixed
                 else _np.empty(0, dtype=_np.int64))
        cluster_np = _np.full(n, -1, dtype=_np.int64)
        out = _np.zeros(2, dtype=_np.int64)
        ks.fc_cluster(
            k_np, k_pins, k_vp, k_vn, k_vwt, score, order_np,
            fixed, use_fixed, float(max_cluster_weight), cluster_np, out,
        )
        if perf is not None:
            perf.coarsen_neighbors_touched += int(out[1])
        return cluster_np.tolist()
    net_ptr, net_pins, vtx_ptr, vtx_nets = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    ws = _WS
    ws.ensure(n, hypergraph.num_nets)
    score = _net_scores(hypergraph, max_net_size, ws)
    conn, stamp, nbrs = ws.conn, ws.stamp, ws.nbrs

    cluster = [-1] * n
    cluster_weight: List[float] = []
    cluster_fixed: List[Optional[int]] = []
    order = list(range(n))
    rng.shuffle(order)
    touched = 0
    for v in order:
        if cluster[v] != -1:
            continue
        epoch = ws.bump()
        ncount = 0
        for i in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[i]
            w = score[e]
            if w < 0.0:
                continue
            lo = net_ptr[e]
            hi = net_ptr[e + 1]
            touched += hi - lo - 1
            for j in range(lo, hi):
                u = net_pins[j]
                if u == v:
                    continue
                if stamp[u] == epoch:
                    conn[u] += w
                else:
                    stamp[u] = epoch
                    conn[u] = w
                    nbrs[ncount] = u
                    ncount += 1
        wv = vwt[v]
        fv = fixed_parts[v] if fixed_parts is not None else None
        best_cluster = -1
        best_c = 0.0
        for t in range(ncount):
            u = nbrs[t]
            cu = cluster[u]
            if cu == -1:
                continue
            if cluster_weight[cu] + wv > max_cluster_weight:
                continue
            cf = cluster_fixed[cu]
            if fv is not None and cf is not None and fv != cf:
                continue
            c = conn[u]
            if c > best_c:
                best_c = c
                best_cluster = cu
        if best_cluster == -1:
            cluster[v] = len(cluster_weight)
            cluster_weight.append(wv)
            cluster_fixed.append(fv)
        else:
            cluster[v] = best_cluster
            cluster_weight[best_cluster] += wv
            if fv is not None:
                cluster_fixed[best_cluster] = fv
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def hyperedge_coarsening(
    hypergraph: Hypergraph,
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """hMetis-style hyperedge coarsening (HEC); returns cluster ids.

    Nets are visited heaviest-first (ties: smaller first, then random
    order); a net all of whose pins are still unclustered is contracted
    into a single cluster, provided the merged weight respects the cap
    and no two pins are fixed to different sides.  Leftover vertices
    become singletons.  Entire small nets vanish at once, which is HEC's
    advantage over pairwise matching on netlists dominated by 2-3 pin
    nets.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    net_ptr, net_pins, _, _ = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    net_weights = hypergraph._net_weights
    ks = _kernels(backend)
    if ks is not None:
        # Shuffle and the heaviest-first stable sort stay on the Python
        # side (same RNG stream, same tie order); the kernel replays the
        # contraction loop over the resulting net order.
        from repro.backends.flatcache import encode_fixed, flat_csr

        k_np, k_pins, _, _, k_vwt, _ = flat_csr(hypergraph)
        order = list(hypergraph.nets())
        rng.shuffle(order)
        order.sort(
            key=lambda e: (-net_weights[e], net_ptr[e + 1] - net_ptr[e])
        )
        order_np = _np.array(order, dtype=_np.int64)
        use_fixed = 1 if fixed_parts is not None else 0
        fixed = (encode_fixed(fixed_parts, n) if use_fixed
                 else _np.empty(0, dtype=_np.int64))
        cluster_np = _np.full(n, -1, dtype=_np.int64)
        out = _np.zeros(2, dtype=_np.int64)
        ks.hec_contract(
            k_np, k_pins, k_vwt, order_np, fixed, use_fixed,
            float(max_cluster_weight), max_net_size, cluster_np, out,
        )
        if perf is not None:
            perf.coarsen_neighbors_touched += int(out[1])
        return cluster_np.tolist()
    cluster = [-1] * n
    order = list(hypergraph.nets())
    rng.shuffle(order)
    order.sort(key=lambda e: (-net_weights[e], net_ptr[e + 1] - net_ptr[e]))
    next_id = 0
    touched = 0
    for e in order:
        lo = net_ptr[e]
        hi = net_ptr[e + 1]
        size = hi - lo
        if size < 2 or size > max_net_size:
            continue
        touched += size
        free = True
        for i in range(lo, hi):
            if cluster[net_pins[i]] != -1:
                free = False
                break
        if not free:
            continue
        total = 0.0
        for i in range(lo, hi):
            total += vwt[net_pins[i]]
        if total > max_cluster_weight:
            continue
        if fixed_parts is not None:
            side = None
            conflict = False
            for i in range(lo, hi):
                fp = fixed_parts[net_pins[i]]
                if fp is not None:
                    if side is None:
                        side = fp
                    elif side != fp:
                        conflict = True
                        break
            if conflict:
                continue
        for i in range(lo, hi):
            cluster[net_pins[i]] = next_id
        next_id += 1
    for v in range(n):
        if cluster[v] == -1:
            cluster[v] = next_id
            next_id += 1
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def restricted_matching(
    hypergraph: Hypergraph,
    assignment: List[int],
    rng: random.Random,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    perf: Optional[PerfCounters] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """Partition-respecting matching for V-cycling (Karypis et al.).

    Identical to heavy-edge matching except that only vertices on the
    *same side* of ``assignment`` may merge, so the current solution
    projects exactly onto the coarse hypergraph.
    """
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    ks = _kernels(backend)
    if ks is not None:
        k_np, k_pins, k_vp, k_vn, k_vwt, score = _kernel_prep(
            hypergraph, max_net_size, ks
        )
        order_np = _np.arange(n, dtype=_np.int64)
        order_l = order_np.tolist()
        rng.shuffle(order_l)
        order_np[:] = order_l
        assign_np = _np.array(assignment, dtype=_np.int64)
        cluster_np = _np.full(n, -1, dtype=_np.int64)
        out = _np.zeros(2, dtype=_np.int64)
        ks.hem_match(
            k_np, k_pins, k_vp, k_vn, k_vwt, score, order_np,
            _np.empty(0, dtype=_np.int64), 0, 1, assign_np,
            float(max_cluster_weight), cluster_np, out,
        )
        if perf is not None:
            perf.coarsen_neighbors_touched += int(out[1])
        return cluster_np.tolist()
    net_ptr, net_pins, vtx_ptr, vtx_nets = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    ws = _WS
    ws.ensure(n, hypergraph.num_nets)
    score = _net_scores(hypergraph, max_net_size, ws)
    conn, stamp, nbrs = ws.conn, ws.stamp, ws.nbrs

    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    touched = 0
    for v in order:
        if cluster[v] != -1:
            continue
        epoch = ws.bump()
        ncount = 0
        for i in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[i]
            w = score[e]
            if w < 0.0:
                continue
            lo = net_ptr[e]
            hi = net_ptr[e + 1]
            touched += hi - lo - 1
            for j in range(lo, hi):
                u = net_pins[j]
                if u == v:
                    continue
                if stamp[u] == epoch:
                    conn[u] += w
                else:
                    stamp[u] = epoch
                    conn[u] = w
                    nbrs[ncount] = u
                    ncount += 1
        best_u = -1
        best_c = 0.0
        wv = vwt[v]
        side = assignment[v]
        for t in range(ncount):
            u = nbrs[t]
            if cluster[u] != -1 or assignment[u] != side:
                continue
            if wv + vwt[u] > max_cluster_weight:
                continue
            c = conn[u]
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def vertex_proposal_chunk(
    hypergraph: Hypergraph,
    lo: int,
    hi: int,
    max_net_size: int = 40,
) -> tuple:
    """Neighbour-connectivity proposals for the vertex range ``[lo, hi)``.

    This is the accumulation phase of :func:`heavy_edge_matching` /
    :func:`first_choice_clustering` / :func:`restricted_matching`
    factored out as a *pure function of the hypergraph*: which vertices
    are already matched never enters the loop, so chunks can be computed
    concurrently (the in-run parallel engine runs one chunk per worker
    against read-only shared-memory CSR views) and merged later under
    the exact serial visit order.  The float accumulation order per
    vertex — nets in CSR order, pins in net order — is byte-for-byte
    the serial kernels' order, so the merged matching is bit-identical.

    Returns ``(offsets, nbrs, conns, touched)``: ``offsets`` has
    ``hi - lo + 1`` entries indexing ``nbrs``/``conns`` per vertex
    (neighbours in first-encounter order with their accumulated
    connectivity), and ``touched[v - lo]`` is the accumulation count the
    serial kernel would charge for visiting ``v`` unmatched.
    """
    net_ptr, net_pins, vtx_ptr, vtx_nets = hypergraph.raw_csr
    ws = _WS
    ws.ensure(hypergraph.num_vertices, hypergraph.num_nets)
    score = _net_scores(hypergraph, max_net_size, ws)
    conn, stamp, nbrs_buf = ws.conn, ws.stamp, ws.nbrs

    offsets = [0] * (hi - lo + 1)
    out_nbrs: List[int] = []
    out_conns: List[float] = []
    touched = [0] * (hi - lo)
    for v in range(lo, hi):
        epoch = ws.bump()
        ncount = 0
        tch = 0
        for i in range(vtx_ptr[v], vtx_ptr[v + 1]):
            e = vtx_nets[i]
            w = score[e]
            if w < 0.0:
                continue
            nlo = net_ptr[e]
            nhi = net_ptr[e + 1]
            tch += nhi - nlo - 1
            for j in range(nlo, nhi):
                u = net_pins[j]
                if u == v:
                    continue
                if stamp[u] == epoch:
                    conn[u] += w
                else:
                    stamp[u] = epoch
                    conn[u] = w
                    nbrs_buf[ncount] = u
                    ncount += 1
        for t in range(ncount):
            u = nbrs_buf[t]
            out_nbrs.append(int(u))
            out_conns.append(float(conn[u]))
        offsets[v - lo + 1] = len(out_nbrs)
        touched[v - lo] = int(tch)
    return offsets, out_nbrs, out_conns, touched


def net_proposal_chunk(
    hypergraph: Hypergraph,
    lo: int,
    hi: int,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
) -> tuple:
    """HEC proposals for the net range ``[lo, hi)``.

    The state-independent share of :func:`hyperedge_coarsening`: size
    eligibility, merged pin weight (accumulated in pin order, so the
    float matches the serial total bit for bit) and the fixed-side
    conflict flag.  Only the "all pins still unclustered" check depends
    on matching state and stays in the serial merge.

    Returns ``(size_ok, totals, conflicts)``, one entry per net.
    """
    net_ptr, net_pins, _, _ = hypergraph.raw_csr
    vwt = hypergraph._vertex_weights
    size_ok = [False] * (hi - lo)
    totals = [0.0] * (hi - lo)
    conflicts = [False] * (hi - lo)
    for e in range(lo, hi):
        nlo = net_ptr[e]
        nhi = net_ptr[e + 1]
        size = nhi - nlo
        if size < 2 or size > max_net_size:
            continue
        size_ok[e - lo] = True
        total = 0.0
        for i in range(nlo, nhi):
            total += vwt[net_pins[i]]
        totals[e - lo] = float(total)
        if fixed_parts is not None:
            side = None
            for i in range(nlo, nhi):
                fp = fixed_parts[net_pins[i]]
                if fp is not None:
                    if side is None:
                        side = fp
                    elif side != fp:
                        conflicts[e - lo] = True
                        break
    return size_ok, totals, conflicts


def _default_cluster_cap(hypergraph: Hypergraph) -> float:
    """Default cluster-weight cap: 4x the average vertex weight, but at
    least the largest existing vertex (macros must stay placeable)."""
    n = max(hypergraph.num_vertices, 1)
    avg = hypergraph.total_vertex_weight / n
    biggest = max(
        (hypergraph.vertex_weight(v) for v in hypergraph.vertices()),
        default=1.0,
    )
    return max(4.0 * avg, biggest)


def _fixed_conflict(
    fixed_parts: List[Optional[int]], v: int, u: int
) -> bool:
    fv, fu = fixed_parts[v], fixed_parts[u]
    return fv is not None and fu is not None and fv != fu
