"""Multilevel partitioning: coarsening, initial partitioning, refinement,
V-cycling — the "leading edge" engine class (ML LIFO / ML CLIP) of the
paper's Tables 1, 4 and 5.
"""

from repro.multilevel.coarsen import CoarseLevel, coarsen
from repro.multilevel.matching import (
    first_choice_clustering,
    heavy_edge_matching,
    hyperedge_coarsening,
    restricted_matching,
)
from repro.multilevel.mlpart import MLConfig, MLPartitioner
from repro.multilevel.parallel import (
    InRunPool,
    build_hierarchy_parallel,
    clamp_inrun_workers,
    close_inrun_pools,
    get_inrun_pool,
    parallel_clustering,
)
from repro.multilevel.pool import (
    Hierarchy,
    HierarchyPool,
    build_hierarchy,
    hierarchy_seed,
    run_multistart_pooled,
)
from repro.multilevel.shmetis import ShmetisResult, shmetis, ubfactor_to_tolerance

__all__ = [
    "CoarseLevel",
    "Hierarchy",
    "HierarchyPool",
    "InRunPool",
    "MLConfig",
    "MLPartitioner",
    "build_hierarchy",
    "build_hierarchy_parallel",
    "clamp_inrun_workers",
    "close_inrun_pools",
    "coarsen",
    "get_inrun_pool",
    "parallel_clustering",
    "first_choice_clustering",
    "heavy_edge_matching",
    "hierarchy_seed",
    "hyperedge_coarsening",
    "restricted_matching",
    "run_multistart_pooled",
    "ShmetisResult",
    "shmetis",
    "ubfactor_to_tolerance",
]
