"""An ``shmetis``-compatible convenience entry point.

The paper evaluates hMetis-1.5 "using precisely its default
configurations (cf. the description of 'shmetis')".  This module
reproduces that interface on top of our multilevel engine so the
Tables 4-5 protocol can be driven exactly the way the paper drove the
original binary:

``shmetis(hypergraph, k, ubfactor, nruns)``
    - runs ``nruns`` independent multilevel starts,
    - keeps the best,
    - V-cycles the best result (hMetis's default final refinement),
    - for ``k > 2`` recursively bisects with the same engine.

``UBfactor`` follows the hMetis user manual: for a bisection, a factor
``b`` constrains each part to between ``(50 - b)%`` and ``(50 + b)%``
of total weight — so ``b = 1`` is the paper's "2%" constraint
(49/51) and ``b = 5`` its "10%" constraint (45/55).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import FMConfig
from repro.core.kway import RecursiveBisection
from repro.hypergraph.hypergraph import Hypergraph
from repro.multilevel.mlpart import MLConfig, MLPartitioner
from repro.multilevel.pool import HierarchyPool


@dataclass
class ShmetisResult:
    """Result of an :func:`shmetis` invocation."""

    assignment: List[int]
    k: int
    cut: float
    part_weights: List[float]
    nruns: int
    runtime_seconds: float

    @property
    def legal(self) -> bool:
        """Legality under the UBfactor window implied at construction
        is recorded by the caller; exposed weights allow re-checking."""
        return all(w > 0 for w in self.part_weights)


def ubfactor_to_tolerance(ubfactor: float) -> float:
    """hMetis UBfactor -> the paper's fractional tolerance.

    ``b`` percent of slack on each side of 50% equals tolerance
    ``2b/100``: UBfactor 1 → 0.02 (49/51), UBfactor 5 → 0.10 (45/55).
    """
    if ubfactor <= 0 or ubfactor >= 50:
        raise ValueError("UBfactor must lie in (0, 50)")
    return 2.0 * ubfactor / 100.0


def shmetis(
    hypergraph: Hypergraph,
    k: int = 2,
    ubfactor: float = 5.0,
    nruns: int = 10,
    seed: int = 0,
    clip: bool = False,
    fixed_parts: Optional[Sequence[Optional[int]]] = None,
) -> ShmetisResult:
    """Partition with shmetis-default behaviour (see module docstring).

    Parameters mirror the hMetis command line: ``k`` parts, ``UBfactor``
    balance, ``nruns`` starts.  ``clip`` selects CLIP refinement.
    """
    if nruns < 1:
        raise ValueError("nruns must be >= 1")
    t0 = time.perf_counter()
    tolerance = ubfactor_to_tolerance(ubfactor)
    config = MLConfig(fm_config=FMConfig(clip=clip))
    engine = MLPartitioner(config, tolerance=tolerance)

    if k == 2:
        # Starts draw coarsening hierarchies from a small seeded pool
        # instead of re-coarsening per start (hierarchy j is built with
        # hierarchy_seed(seed, j), so results do not depend on nruns for
        # any common prefix of starts: start i always uses hierarchy
        # i % min(nruns, 4)).
        pool = HierarchyPool(
            hypergraph,
            config,
            min(nruns, 4),
            base_seed=seed,
            fixed_parts=fixed_parts,
        )
        best = None
        for i in range(nruns):
            result = engine.partition(
                hypergraph,
                seed=seed + i,
                fixed_parts=fixed_parts,
                hierarchy=pool.get(i),
            )
            if best is None or result.cut < best.cut:
                best = result
        assert best is not None
        # hMetis V-cycles the best of the starts.
        improved = engine.vcycle(
            hypergraph, best.assignment, seed=seed + nruns
        )
        final = improved if improved.cut < best.cut else best
        assignment = final.assignment
        cut = final.cut
        weights = hypergraph.part_weights(assignment, 2)
    else:
        if fixed_parts is not None:
            raise NotImplementedError(
                "fixed vertices are supported for k = 2 only"
            )
        rb = RecursiveBisection(
            k,
            tolerance=tolerance,
            partitioner_factory=lambda tol: MLPartitioner(
                config, tolerance=tol
            ),
        )
        best_kway = None
        for i in range(nruns):
            result = rb.partition(hypergraph, seed=seed + 1000 * i)
            if best_kway is None or result.cut < best_kway.cut:
                best_kway = result
        assert best_kway is not None
        assignment = best_kway.assignment
        cut = best_kway.cut
        weights = list(best_kway.part_weights)

    return ShmetisResult(
        assignment=list(assignment),
        k=k,
        cut=cut,
        part_weights=weights,
        nruns=nruns,
        runtime_seconds=time.perf_counter() - t0,
    )
