"""Multilevel FM partitioner (ML LIFO FM / ML CLIP FM).

The classic three-phase scheme of hMetis [Karypis et al. 97]:

1. **Coarsening** — repeated clustering (heavy-edge matching or
   first-choice) until the hypergraph is small;
2. **Initial partitioning** — several FM starts on the coarsest level;
3. **Uncoarsening** — project the solution level by level, refining with
   the flat FM/CLIP engine at each level.

Optionally, **V-cycling** [Karypis-Kumar]: re-coarsen with a
partition-respecting matching and refine again, which the paper's
hMetis-1.5 evaluation (Tables 4-5) applies to the best of several starts.

The refinement engine is the same :class:`~repro.core.engine.FMEngine`
as the flat partitioners, so Table 1's point — implicit flat-engine
decisions remain visible inside a strong multilevel wrapper — holds by
construction.

**Hierarchy reuse.**  ``partition()`` accepts a precomputed
:class:`~repro.multilevel.pool.Hierarchy`; multistart drivers pass
pooled hierarchies (see :mod:`repro.multilevel.pool`) so K coarsening
runs serve any number of starts.  When a hierarchy is supplied the
per-start RNG feeds *only* initial partitioning and refinement, which is
what makes a pooled run bit-identical to a serial run that rebuilds the
same hierarchies from the same hierarchy seeds.

**Oracle mode.**  ``MLPartitioner(oracle=True)`` routes every coarsening
step through the frozen seed implementation
(:mod:`repro.multilevel._seed_coarsen`), builds fresh engines with the
seed engine's reverse rollback, and uncoarsens with freshly allocated
projections — the faithful pre-kernel code path that ``repro bench ml``
measures the kernels against.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core._seed_engine import SeedFMEngine
from repro.core.balance import BalanceConstraint
from repro.core.config import FMConfig
from repro.core.engine import FMEngine
from repro.core.initial import generate_initial
from repro.core.partition import Partition2
from repro.core.partitioner import PartitionResult
from repro.core.perf import PerfCounters
from repro.hypergraph.hypergraph import Hypergraph
from repro.multilevel import _seed_coarsen as _oracle
from repro.multilevel.coarsen import CoarseLevel, coarsen
from repro.multilevel.matching import restricted_matching
from repro.multilevel.pool import Hierarchy, build_hierarchy


@dataclass(frozen=True)
class MLConfig:
    """Multilevel-specific configuration.

    Attributes
    ----------
    fm_config:
        Flat-engine configuration used for refinement and the coarsest-
        level initial partitioning (Table 1 sweeps this).
    coarsest_size:
        Stop coarsening below this many vertices.
    min_reduction:
        Abort coarsening when a level shrinks by less than this factor
        (guards against matching stalls on dense instances).
    initial_starts:
        FM starts at the coarsest level; the best seeds uncoarsening.
    refine_passes:
        FM pass limit per uncoarsening level (full convergence at every
        level would waste time the paper's use model does not have).
    clustering:
        ``"heavy_edge"``, ``"first_choice"`` or ``"hyperedge"`` (HEC).
    vcycles:
        Number of V-cycle refinement rounds applied to the final
        solution of each start.
    inrun_workers:
        In-run parallel workers for hierarchy construction (chunked
        matching proposals merged deterministically — bit-identical to
        serial at any value; see :mod:`repro.multilevel.parallel`).
        1 keeps the serial kernels.
    backend:
        Kernel backend for refinement, matching and contraction
        (``None`` = process default / ``REPRO_BACKEND`` / numpy; see
        :mod:`repro.backends`).  ``fm_config.backend`` takes precedence
        when both are set.  Every registered backend is bit-identical
        to numpy, so this knob changes wall-clock only.
    """

    fm_config: FMConfig = FMConfig()
    coarsest_size: int = 40
    min_reduction: float = 1.1
    initial_starts: int = 4
    refine_passes: int = 4
    clustering: str = "heavy_edge"
    vcycles: int = 0
    inrun_workers: int = 1
    backend: Optional[str] = None

    def describe(self) -> str:
        """Short tag, e.g. ``ML CLIP/nonzero/away/lifo``."""
        return f"ML {self.fm_config.describe()}"


class MLPartitioner:
    """Multilevel 2-way partitioner with optional V-cycling.

    Satisfies the same ``partition(hypergraph, seed, fixed_parts)``
    protocol as :class:`~repro.core.partitioner.FMPartitioner`, so the
    evaluation machinery treats flat and multilevel heuristics
    uniformly.  ``partition`` additionally accepts a precomputed
    ``hierarchy`` for pooled multistart runs.

    Parameters
    ----------
    config, tolerance, name:
        As before (configuration, balance tolerance, report label).
    oracle:
        When True, run the frozen seed coarsening/rollback code paths
        end to end (see module docstring).  The benchmark baseline;
        never faster, always bit-equivalent.
    inrun_workers:
        Overrides ``config.inrun_workers`` when given: in-run parallel
        workers for hierarchy construction (bit-identical to serial;
        clamped to 1 inside daemonic pool workers and in oracle mode).
    backend:
        Overrides the configured kernel backend when given (explicit
        argument > ``fm_config.backend`` > ``config.backend`` > process
        default).  Bit-identical across backends; oracle mode ignores
        it (the frozen seed code has no kernels).
    """

    def __init__(
        self,
        config: Optional[MLConfig] = None,
        tolerance: float = 0.02,
        name: Optional[str] = None,
        oracle: bool = False,
        inrun_workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else MLConfig()
        self.tolerance = tolerance
        self.oracle = oracle
        if backend is None:
            backend = self.config.fm_config.backend
        if backend is None:
            backend = getattr(self.config, "backend", None)
        #: Resolved backend request threaded into every engine,
        #: matching and contraction call (None = process default).
        self.backend = backend
        if inrun_workers is None:
            inrun_workers = getattr(self.config, "inrun_workers", 1)
        if inrun_workers < 1:
            raise ValueError("inrun_workers must be >= 1")
        self.inrun_workers = inrun_workers
        if self.config.clustering not in (
            "heavy_edge",
            "first_choice",
            "hyperedge",
        ):
            raise ValueError(
                f"unknown clustering scheme {self.config.clustering!r}"
            )
        #: Display name in experiment reports; override to label
        #: configurations distinctly.
        self.name = name if name is not None else self.config.describe()
        # Engines cached across partition() calls (kernel mode only):
        # their per-hypergraph kernel scratch then persists across the
        # starts of a multistart run — every level of a pooled hierarchy
        # hits warm scratch from start 2 on.  Balance and RNG are
        # rebound per call; the engine reads both through ``self`` so
        # rebinding is exact.
        self._refine_engine: Optional[FMEngine] = None
        self._init_engine: Optional[FMEngine] = None
        # Uncoarsening projection buffers, one per level size.
        self._proj_bufs: Dict[int, List[int]] = {}
        #: Optional perf sink: when set, every refine call's counters
        #: (and non-pooled coarsening work) accumulate into it.  The
        #: orchestrator points this at a per-trial collector so
        #: campaign reports can aggregate kernel work per heuristic.
        self.perf: Optional[PerfCounters] = None

    def _note_perf(self, result) -> None:
        """Fold one engine result's counters into the perf sink."""
        if self.perf is not None:
            counters = getattr(result, "perf", None)
            if counters is not None:
                self.perf.merge(counters)

    # ------------------------------------------------------------------
    def _engines(self, balance: BalanceConstraint, rng: random.Random):
        """(initial, refine) engines for one start.

        Oracle mode constructs fresh frozen seed engines; kernel mode
        rebinds the cached :class:`FMEngine` pair.
        """
        cfg = self.config
        refine_cfg = replace(cfg.fm_config, max_passes=cfg.refine_passes)
        if self.oracle:
            # The fully frozen reference: the seed FM engine (the PR
            # that introduced the flat FM kernel froze it for exactly
            # this purpose), constructed fresh per start as the seed
            # multilevel code did.  Bit-identical results to the kernel
            # engines below — the equivalence suites assert it.
            return (
                SeedFMEngine(balance, cfg.fm_config, rng),
                SeedFMEngine(balance, refine_cfg, rng),
            )
        if self._refine_engine is None:
            self._init_engine = FMEngine(
                balance, cfg.fm_config, rng, backend=self.backend
            )
            self._refine_engine = FMEngine(
                balance, refine_cfg, rng, backend=self.backend
            )
        else:
            self._init_engine.balance = balance
            self._init_engine.rng = rng
            self._refine_engine.balance = balance
            self._refine_engine.rng = rng
        return self._init_engine, self._refine_engine

    def _project(self, level, assignment: List[int]) -> List[int]:
        """Lift ``assignment`` through one level (buffered in kernel mode).

        The buffer is safe to reuse because :class:`Partition2` copies
        the assignment it is given.
        """
        if self.oracle:
            return level.project_assignment(assignment)
        n = level.fine.num_vertices
        buf = self._proj_bufs.get(n)
        if buf is None:
            buf = [0] * n
            self._proj_bufs[n] = buf
        return level.project_assignment_into(assignment, buf)

    # ------------------------------------------------------------------
    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
        hierarchy: Optional[Hierarchy] = None,
    ) -> PartitionResult:
        """One multilevel start (coarsen, initial, uncoarsen [+V-cycles]).

        When ``hierarchy`` is supplied (pooled multistart), coarsening
        is skipped and the per-start RNG drives only initial
        partitioning and refinement; the hierarchy must have been built
        for this hypergraph, the same fixed assignment, and the same
        coarsening implementation (oracle vs. kernel).
        """
        start_time = time.perf_counter()
        rng = random.Random(seed)
        cfg = self.config
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)
        fixed = list(fixed_parts) if fixed_parts else None

        if hierarchy is None:
            hierarchy = self._build_hierarchy(hypergraph, cfg, rng, fixed)
        else:
            if hierarchy.hypergraph is not hypergraph:
                raise ValueError(
                    "hierarchy was built for a different hypergraph"
                )
            if hierarchy.oracle != self.oracle:
                raise ValueError(
                    "hierarchy coarsening mode (oracle vs kernel) does not "
                    "match this partitioner"
                )
            sig = tuple(fixed) if fixed is not None else None
            if sig != hierarchy.fixed_signature:
                raise ValueError(
                    "hierarchy was built under different fixed_parts"
                )
        levels = hierarchy.levels
        coarsest = hierarchy.coarsest
        coarsest_fixed = hierarchy.coarsest_fixed

        init_engine, refine_engine = self._engines(balance, rng)
        part = self._initial_partition(
            coarsest, balance, rng, coarsest_fixed, init_engine
        )

        make_part = Partition2 if self.oracle else Partition2.fast
        assignment = part.assignment
        for level, level_fixed in reversed(levels):
            assignment = self._project(level, assignment)
            fine_part = make_part(
                level.fine,
                assignment,
                [p is not None for p in level_fixed] if level_fixed else None,
            )
            self._note_perf(refine_engine.refine(fine_part))
            assignment = fine_part.assignment

        final = make_part(
            hypergraph,
            assignment,
            [p is not None for p in fixed] if fixed else None,
        )
        for _ in range(cfg.vcycles):
            self._one_vcycle(final, balance, rng, refine_engine)

        return PartitionResult(
            assignment=final.assignment,
            cut=final.cut,
            part_weights=list(final.part_weights),
            legal=balance.is_legal(final.part_weights),
            runtime_seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    def _build_hierarchy(self, hypergraph, cfg, rng, fixed) -> Hierarchy:
        """Coarsen for one standalone start, in-run parallel when asked.

        The parallel-proposal build is bit-identical to the serial one,
        so the choice (including the daemon clamp inside campaign
        workers) never changes the result — only wall-clock.  The
        frozen oracle path always builds serially.
        """
        if self.inrun_workers > 1 and not self.oracle:
            from repro.multilevel.parallel import (
                build_hierarchy_parallel,
                clamp_inrun_workers,
                get_inrun_pool,
            )

            effective = clamp_inrun_workers(self.inrun_workers)
            if effective > 1:
                return build_hierarchy_parallel(
                    hypergraph,
                    cfg,
                    rng,
                    get_inrun_pool(effective),
                    fixed_parts=fixed,
                    perf=self.perf,
                    backend=self.backend,
                )
        return build_hierarchy(
            hypergraph,
            cfg,
            rng,
            fixed_parts=fixed,
            oracle=self.oracle,
            perf=self.perf,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    def vcycle(
        self,
        hypergraph: Hypergraph,
        assignment: Sequence[int],
        seed: int = 0,
        rounds: int = 1,
    ) -> PartitionResult:
        """Apply ``rounds`` V-cycles to an existing solution.

        This is the shmetis use model the paper evaluates: V-cycling is
        "invoked only for the best result of several starts", which is
        also why sampling-based ranking methods cannot be used
        (Section 3.2).
        """
        start_time = time.perf_counter()
        rng = random.Random(seed)
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)
        _, refine_engine = self._engines(balance, rng)
        part = Partition2(hypergraph, list(assignment))
        for _ in range(rounds):
            self._one_vcycle(part, balance, rng, refine_engine)
        return PartitionResult(
            assignment=part.assignment,
            cut=part.cut,
            part_weights=list(part.part_weights),
            legal=balance.is_legal(part.part_weights),
            runtime_seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    def _initial_partition(
        self,
        coarsest: Hypergraph,
        balance: BalanceConstraint,
        rng: random.Random,
        fixed,
        engine: FMEngine,
    ) -> Partition2:
        cfg = self.config
        init_cfg = cfg.fm_config
        best: Optional[Partition2] = None
        for _ in range(max(1, cfg.initial_starts)):
            part = generate_initial(
                coarsest, balance, init_cfg.initial_solution, rng, fixed
            )
            self._note_perf(engine.refine(part))
            if best is None or part.cut < best.cut:
                best = part
        assert best is not None
        return best

    def _one_vcycle(
        self,
        part: Partition2,
        balance: BalanceConstraint,
        rng: random.Random,
        engine: FMEngine,
    ) -> None:
        """Restricted coarsening + refinement descent, in place.

        V-cycle coarsening depends on the current assignment, so it
        cannot come from the hierarchy pool; it still uses the kernel
        matching/contraction (or the oracle in oracle mode).
        """
        cfg = self.config
        if self.oracle:
            match, contract = _oracle.seed_restricted_matching, _oracle.seed_coarsen
            make_part = Partition2
        else:
            match = partial(restricted_matching, backend=self.backend)
            contract = partial(coarsen, backend=self.backend)
            make_part = Partition2.fast
        levels: List[CoarseLevel] = []
        fixed_per_level: List[List[bool]] = []
        hg = part.hypergraph
        assignment = list(part.assignment)
        fixed = list(part.fixed)
        while hg.num_vertices > cfg.coarsest_size:
            cluster = match(hg, assignment, rng)
            level = contract(hg, cluster)
            if level.coarse.num_vertices >= hg.num_vertices:
                break  # stall guard: no progress at all
            if (
                level.coarse.num_vertices
                > hg.num_vertices / cfg.min_reduction
            ):
                break
            coarse_assignment = [0] * level.coarse.num_vertices
            coarse_fixed = [False] * level.coarse.num_vertices
            for v in range(hg.num_vertices):
                c = level.cluster_of[v]
                coarse_assignment[c] = assignment[v]
                if fixed[v]:
                    coarse_fixed[c] = True
            levels.append(level)
            fixed_per_level.append(fixed)
            hg = level.coarse
            assignment = coarse_assignment
            fixed = coarse_fixed

        coarse_part = make_part(hg, assignment, fixed)
        self._note_perf(engine.refine(coarse_part))
        assignment = coarse_part.assignment
        for level, level_fixed in zip(reversed(levels), reversed(fixed_per_level)):
            assignment = self._project(level, assignment)
            fine_part = make_part(level.fine, assignment, level_fixed)
            self._note_perf(engine.refine(fine_part))
            assignment = fine_part.assignment

        # Write the improved assignment back into ``part``.
        improved = make_part(part.hypergraph, assignment, part.fixed)
        if improved.cut <= part.cut:
            part.assignment = improved.assignment
            part.part_weights = improved.part_weights
            part.pins_in_part = improved.pins_in_part
            part.cut = improved.cut
