"""Multilevel FM partitioner (ML LIFO FM / ML CLIP FM).

The classic three-phase scheme of hMetis [Karypis et al. 97]:

1. **Coarsening** — repeated clustering (heavy-edge matching or
   first-choice) until the hypergraph is small;
2. **Initial partitioning** — several FM starts on the coarsest level;
3. **Uncoarsening** — project the solution level by level, refining with
   the flat FM/CLIP engine at each level.

Optionally, **V-cycling** [Karypis-Kumar]: re-coarsen with a
partition-respecting matching and refine again, which the paper's
hMetis-1.5 evaluation (Tables 4-5) applies to the best of several starts.

The refinement engine is the same :class:`~repro.core.engine.FMEngine`
as the flat partitioners, so Table 1's point — implicit flat-engine
decisions remain visible inside a strong multilevel wrapper — holds by
construction.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.balance import BalanceConstraint
from repro.core.config import FMConfig
from repro.core.engine import FMEngine
from repro.core.initial import generate_initial
from repro.core.partition import Partition2
from repro.core.partitioner import PartitionResult
from repro.hypergraph.hypergraph import Hypergraph
from repro.multilevel.coarsen import CoarseLevel, coarsen
from repro.multilevel.matching import (
    first_choice_clustering,
    heavy_edge_matching,
    hyperedge_coarsening,
    restricted_matching,
)


@dataclass(frozen=True)
class MLConfig:
    """Multilevel-specific configuration.

    Attributes
    ----------
    fm_config:
        Flat-engine configuration used for refinement and the coarsest-
        level initial partitioning (Table 1 sweeps this).
    coarsest_size:
        Stop coarsening below this many vertices.
    min_reduction:
        Abort coarsening when a level shrinks by less than this factor
        (guards against matching stalls on dense instances).
    initial_starts:
        FM starts at the coarsest level; the best seeds uncoarsening.
    refine_passes:
        FM pass limit per uncoarsening level (full convergence at every
        level would waste time the paper's use model does not have).
    clustering:
        ``"heavy_edge"``, ``"first_choice"`` or ``"hyperedge"`` (HEC).
    vcycles:
        Number of V-cycle refinement rounds applied to the final
        solution of each start.
    """

    fm_config: FMConfig = FMConfig()
    coarsest_size: int = 40
    min_reduction: float = 1.1
    initial_starts: int = 4
    refine_passes: int = 4
    clustering: str = "heavy_edge"
    vcycles: int = 0

    def describe(self) -> str:
        """Short tag, e.g. ``ML CLIP/nonzero/away/lifo``."""
        return f"ML {self.fm_config.describe()}"


class MLPartitioner:
    """Multilevel 2-way partitioner with optional V-cycling.

    Satisfies the same ``partition(hypergraph, seed, fixed_parts)``
    protocol as :class:`~repro.core.partitioner.FMPartitioner`, so the
    evaluation machinery treats flat and multilevel heuristics
    uniformly.
    """

    def __init__(
        self,
        config: Optional[MLConfig] = None,
        tolerance: float = 0.02,
        name: Optional[str] = None,
    ) -> None:
        self.config = config if config is not None else MLConfig()
        self.tolerance = tolerance
        if self.config.clustering not in (
            "heavy_edge",
            "first_choice",
            "hyperedge",
        ):
            raise ValueError(
                f"unknown clustering scheme {self.config.clustering!r}"
            )
        #: Display name in experiment reports; override to label
        #: configurations distinctly.
        self.name = name if name is not None else self.config.describe()

    # ------------------------------------------------------------------
    def partition(
        self,
        hypergraph: Hypergraph,
        seed: int = 0,
        fixed_parts: Optional[Sequence[Optional[int]]] = None,
    ) -> PartitionResult:
        """One multilevel start (coarsen, initial, uncoarsen [+V-cycles])."""
        start_time = time.perf_counter()
        rng = random.Random(seed)
        cfg = self.config
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)

        levels, coarsest, coarsest_fixed = self._build_hierarchy(
            hypergraph, rng, list(fixed_parts) if fixed_parts else None
        )

        part = self._initial_partition(coarsest, balance, rng, coarsest_fixed)

        # One refinement engine reused across all levels and V-cycles:
        # its kernel scratch is keyed per hypergraph (identity + weight
        # fingerprint), so repeated refines of the same level — e.g. the
        # V-cycle rounds below — skip the invariant rebuild.  Behavior
        # is unchanged: the engine carries no other cross-refine state.
        refine_cfg = replace(cfg.fm_config, max_passes=cfg.refine_passes)
        refine_engine = FMEngine(balance, refine_cfg, rng)
        assignment = part.assignment
        for level, level_fixed in reversed(levels):
            assignment = level.project_assignment(assignment)
            fine_part = Partition2(
                level.fine,
                assignment,
                fixed=[p is not None for p in level_fixed]
                if level_fixed
                else None,
            )
            refine_engine.refine(fine_part)
            assignment = fine_part.assignment

        final = Partition2(
            hypergraph,
            assignment,
            fixed=[p is not None for p in fixed_parts] if fixed_parts else None,
        )
        for _ in range(cfg.vcycles):
            self._one_vcycle(final, balance, rng, refine_engine)

        return PartitionResult(
            assignment=final.assignment,
            cut=final.cut,
            part_weights=list(final.part_weights),
            legal=balance.is_legal(final.part_weights),
            runtime_seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    def vcycle(
        self,
        hypergraph: Hypergraph,
        assignment: Sequence[int],
        seed: int = 0,
        rounds: int = 1,
    ) -> PartitionResult:
        """Apply ``rounds`` V-cycles to an existing solution.

        This is the shmetis use model the paper evaluates: V-cycling is
        "invoked only for the best result of several starts", which is
        also why sampling-based ranking methods cannot be used
        (Section 3.2).
        """
        start_time = time.perf_counter()
        rng = random.Random(seed)
        balance = BalanceConstraint(hypergraph.total_vertex_weight, self.tolerance)
        refine_cfg = replace(
            self.config.fm_config, max_passes=self.config.refine_passes
        )
        refine_engine = FMEngine(balance, refine_cfg, rng)
        part = Partition2(hypergraph, list(assignment))
        for _ in range(rounds):
            self._one_vcycle(part, balance, rng, refine_engine)
        return PartitionResult(
            assignment=part.assignment,
            cut=part.cut,
            part_weights=list(part.part_weights),
            legal=balance.is_legal(part.part_weights),
            runtime_seconds=time.perf_counter() - start_time,
        )

    # ------------------------------------------------------------------
    def _cluster(self, hg: Hypergraph, rng: random.Random, fixed):
        if self.config.clustering == "first_choice":
            return first_choice_clustering(hg, rng, fixed_parts=fixed)
        if self.config.clustering == "hyperedge":
            return hyperedge_coarsening(hg, rng, fixed_parts=fixed)
        return heavy_edge_matching(hg, rng, fixed_parts=fixed)

    def _build_hierarchy(self, hypergraph, rng, fixed_parts):
        """Coarsen until small; returns (levels, coarsest, coarsest_fixed).

        ``levels`` is a list of ``(CoarseLevel, fine_fixed_parts)`` from
        finest to coarsest.
        """
        cfg = self.config
        levels: List = []
        hg = hypergraph
        fixed = fixed_parts
        while hg.num_vertices > cfg.coarsest_size:
            cluster = self._cluster(hg, rng, fixed)
            level = coarsen(hg, cluster)
            if (
                level.coarse.num_vertices
                > hg.num_vertices / cfg.min_reduction
            ):
                break
            coarse_fixed = self._project_fixed(level, fixed)
            levels.append((level, fixed))
            hg = level.coarse
            fixed = coarse_fixed
        return levels, hg, fixed

    @staticmethod
    def _project_fixed(level: CoarseLevel, fixed) -> Optional[List[Optional[int]]]:
        if fixed is None:
            return None
        coarse_fixed: List[Optional[int]] = [None] * level.coarse.num_vertices
        for v, side in enumerate(fixed):
            if side is not None:
                coarse_fixed[level.cluster_of[v]] = side
        return coarse_fixed

    def _initial_partition(
        self,
        coarsest: Hypergraph,
        balance: BalanceConstraint,
        rng: random.Random,
        fixed,
    ) -> Partition2:
        cfg = self.config
        init_cfg = self.config.fm_config
        # All starts refine the same coarsest hypergraph, so one engine
        # builds the kernel scratch once and reuses it per start.
        engine = FMEngine(balance, init_cfg, rng)
        best: Optional[Partition2] = None
        for _ in range(max(1, cfg.initial_starts)):
            part = generate_initial(
                coarsest, balance, init_cfg.initial_solution, rng, fixed
            )
            engine.refine(part)
            if best is None or part.cut < best.cut:
                best = part
        assert best is not None
        return best

    def _one_vcycle(
        self,
        part: Partition2,
        balance: BalanceConstraint,
        rng: random.Random,
        engine: FMEngine,
    ) -> None:
        """Restricted coarsening + refinement descent, in place."""
        cfg = self.config
        levels: List[CoarseLevel] = []
        fixed_per_level: List[List[bool]] = []
        hg = part.hypergraph
        assignment = list(part.assignment)
        fixed = list(part.fixed)
        while hg.num_vertices > cfg.coarsest_size:
            cluster = restricted_matching(hg, assignment, rng)
            level = coarsen(hg, cluster)
            if (
                level.coarse.num_vertices
                > hg.num_vertices / cfg.min_reduction
            ):
                break
            coarse_assignment = [0] * level.coarse.num_vertices
            coarse_fixed = [False] * level.coarse.num_vertices
            for v in range(hg.num_vertices):
                c = level.cluster_of[v]
                coarse_assignment[c] = assignment[v]
                if fixed[v]:
                    coarse_fixed[c] = True
            levels.append(level)
            fixed_per_level.append(fixed)
            hg = level.coarse
            assignment = coarse_assignment
            fixed = coarse_fixed

        coarse_part = Partition2(hg, assignment, fixed)
        engine.refine(coarse_part)
        assignment = coarse_part.assignment
        for level, level_fixed in zip(reversed(levels), reversed(fixed_per_level)):
            assignment = level.project_assignment(assignment)
            fine_part = Partition2(level.fine, assignment, level_fixed)
            engine.refine(fine_part)
            assignment = fine_part.assignment

        # Write the improved assignment back into ``part``.
        improved = Partition2(part.hypergraph, assignment, part.fixed)
        if improved.cut <= part.cut:
            part.assignment = improved.assignment
            part.part_weights = improved.part_weights
            part.pins_in_part = improved.pins_in_part
            part.cut = improved.cut
