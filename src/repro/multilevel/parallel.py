"""In-run shared-memory parallelism with a deterministic merge.

All parallelism elsewhere in the repo is *across* trials; this module
parallelizes *inside* one partition run while preserving the repo's core
contract — parallel results bit-identical to serial — via two legs:

**Chunked-proposal coarsening.**  The matching kernels'
neighbour-connectivity accumulation is a pure function of the hypergraph
(which vertices are already matched never enters the loop; only the
selection phase consults cluster state).  So the accumulation is chunked
over contiguous vertex (or net) ranges, computed by worker processes
against read-only shared-memory CSR views (``Hypergraph.to_shared()``),
and merged by a *serial* fixed-order reduction that replays the exact
selection loop of the serial kernel — same ``rng.shuffle`` visit order,
same strict-``>`` tie-breaks, same fixed/capacity guards.  Because the
proposal floats are accumulated in the serial kernels' exact order (see
:func:`~repro.multilevel.matching.vertex_proposal_chunk`), the merged
cluster map is identical to the serial epoch-stamped ``_Workspace``
result for the same seed, bit for bit.

**Multistart fan-out.**  Initial partitioning + FM refinement of
different starts are independent given the split RNG streams of
:mod:`repro.multilevel.pool` (hierarchy randomness and per-start
randomness never mix).  Starts fan out across a persistent in-run worker
pool via the same once-pickled ``build_payload`` /
``executor_from_payload`` handoff the campaign pool uses; workers share
one sticky :class:`~repro.multilevel.pool.HierarchyPool` per payload and
stream per-start results back, reassembled in fixed start order with the
serial driver's strict-``<`` best selection.

**Self-healing.**  Worker death (crash or kill) is recovered by
respawning the worker, replaying its registered context (payloads and
shared hypergraphs) and re-dispatching its outstanding tasks.  Both legs
are deterministic, so a healed run is record-identical to an undisturbed
one — the kill-mid-run tests assert exactly this.

**Fair-share composition.**  In-run workers compose with trial-level
dispatch through :func:`clamp_inrun_workers`: a daemonic worker (the
campaign pool and service fleet both run daemon workers, which cannot
spawn children) clamps to 1, and a job asking for ``W`` trial workers x
``I`` in-run workers is clamped so ``W x I`` never exceeds the fleet.
Because parallel and serial results are bit-identical, clamping is
semantically invisible — only wall-clock changes.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue
import random
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.multistart import MultistartResult, StartRecord
from repro.core.perf import PerfCounters
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.shm import attach_hypergraph, detach_handle, unlink_handle
from repro.multilevel.coarsen import coarsen
from repro.multilevel.matching import (
    _default_cluster_cap,
    _fixed_conflict,
    net_proposal_chunk,
    vertex_proposal_chunk,
)
from repro.multilevel.pool import (
    Hierarchy,
    config_backend,
    hierarchy_seed,
    project_fixed,
    supports_hierarchy,
)

_ORPHAN_POLL_SECONDS = 5.0
#: Poll cadence of the driver's result wait — how quickly a dead in-run
#: worker is noticed, respawned and its outstanding tasks re-dispatched.
_HEAL_POLL_SECONDS = 0.2
#: Spawn payloads retained per pool (current + previous epoch), so a
#: respawned worker can still serve a straggling prior-epoch task.
_PAYLOAD_KEEP = 2
#: Respawn budget per pool lifetime — a backstop against a worker that
#: dies deterministically on its input looping forever.
_MAX_RESPAWNS = 100


# ----------------------------------------------------------------------
def clamp_inrun_workers(
    requested: int,
    trial_workers: int = 1,
    fleet: Optional[int] = None,
) -> int:
    """Effective in-run worker count under fair-share composition.

    * Daemonic processes (campaign pool / service fleet workers) cannot
      spawn children — they clamp to 1 and run the serial path, which is
      bit-identical anyway.
    * ``trial_workers`` trial-level workers x the returned in-run count
      never exceeds ``fleet`` (default: just enough for the larger of
      the two requests), so a job cannot oversubscribe the machine by
      multiplying the two knobs.
    """
    if requested < 1:
        raise ValueError("inrun workers must be >= 1")
    if mp.current_process().daemon:
        return 1
    if fleet is None:
        fleet = max(trial_workers, requested)
    return max(1, min(requested, fleet // max(1, trial_workers)))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _inrun_worker_main(task_q, result_q) -> None:
    """Message loop of one in-run worker.

    Context messages (``payload``/``hg``) register state; task messages
    (``prop``/``run``) produce exactly one result each.  The worker
    exits on the ``None`` sentinel or when orphaned (parent died).
    """
    from repro.orchestrate.executor import executor_from_payload
    from repro.orchestrate.plan import TrialPlan

    parent = os.getppid()
    payloads: Dict[int, bytes] = {}
    executors: Dict[int, object] = {}
    handles: Dict[str, tuple] = {}
    attached: Dict[str, tuple] = {}  #: key -> (hypergraph, handle)

    def _hypergraph(key: str) -> Hypergraph:
        ent = attached.get(key)
        if ent is None:
            handle, _ = handles[key]
            hg = attach_hypergraph(handle, materialize=False)
            ent = (hg, handle if handle.is_shared else None)
            attached[key] = ent
        return ent[0]

    def _drop_hypergraph(key: str) -> None:
        handles.pop(key, None)
        ent = attached.pop(key, None)
        if ent is not None and ent[1] is not None:
            detach_handle(ent[1])

    try:
        while True:
            try:
                msg = task_q.get(timeout=_ORPHAN_POLL_SECONDS)
            except queue.Empty:
                if os.getppid() != parent:
                    return  # orphaned: supervisor died without cleanup
                continue
            if msg is None:
                return
            kind = msg[0]
            if kind == "payload":
                _, epoch, blob = msg
                payloads[epoch] = blob
                for old in sorted(payloads)[:-_PAYLOAD_KEEP]:
                    del payloads[old]
                    stale = executors.pop(old, None)
                    if stale is not None:
                        stale.close()
            elif kind == "hg":
                _, key, handle, fixed = msg
                handles[key] = (handle, fixed)
            elif kind == "drophg":
                _drop_hypergraph(msg[1])
            elif kind == "prop":
                _, task_id, key, scheme, lo, hi, max_net_size = msg
                try:
                    hg = _hypergraph(key)
                    if scheme == "net":
                        data = net_proposal_chunk(
                            hg, lo, hi, max_net_size, handles[key][1]
                        )
                    else:
                        data = vertex_proposal_chunk(hg, lo, hi, max_net_size)
                    result_q.put(("prop", task_id, "ok", data))
                except Exception:
                    result_q.put(
                        ("prop", task_id, "error", traceback.format_exc(limit=8))
                    )
            elif kind == "run":
                _, task_id, epoch, plan_tuple, with_assignment = msg
                try:
                    executor = executors.get(epoch)
                    if executor is None:
                        executor = executor_from_payload(payloads[epoch])
                        executors[epoch] = executor
                    plan = TrialPlan(*plan_tuple)
                    payload, _ = executor.run(
                        plan, with_assignment=with_assignment
                    )
                    result_q.put(("run", task_id, "ok", payload))
                except Exception:
                    result_q.put(
                        ("run", task_id, "error", traceback.format_exc(limit=8))
                    )
    finally:
        for executor in executors.values():
            executor.close()
        for key in list(attached):
            _drop_hypergraph(key)


class _InRunWorker:
    """One worker process plus its dedicated task queue."""

    def __init__(self, ctx, result_q) -> None:
        self.task_q = ctx.Queue()
        self.process = ctx.Process(
            target=_inrun_worker_main,
            args=(self.task_q, result_q),
            daemon=True,
        )
        self.process.start()


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
class InRunPool:
    """A persistent pool of in-run workers with deterministic healing.

    Dedicated per-worker task queues give the driver precise ownership:
    it always knows which worker holds which outstanding task, so a dead
    worker can be respawned, its registered context (spawn payloads and
    shared hypergraphs) replayed, and exactly its outstanding tasks
    re-dispatched.  Determinism of both task kinds makes the recovery
    invisible in the results.

    Pools are cheap to keep alive (idle workers block on their queues)
    and are reused across runs via :func:`get_inrun_pool`.
    """

    def __init__(self, workers: int, ctx: Optional[mp.context.BaseContext] = None):
        if workers < 1:
            raise ValueError("pool needs >= 1 worker")
        if mp.current_process().daemon:
            raise RuntimeError(
                "in-run pools cannot be created inside daemonic workers; "
                "clamp_inrun_workers() returns 1 there"
            )
        if ctx is None:
            ctx = (
                mp.get_context("fork")
                if "fork" in mp.get_all_start_methods()
                else mp.get_context()
            )
        self._ctx = ctx
        # Start the shared-memory resource tracker *before* forking:
        # children must inherit it, or each worker lazily spawns its own
        # tracker whose attach-registrations are never unregistered
        # (spurious "leaked shared_memory" warnings at exit).
        try:  # pragma: no cover - CPython implementation detail
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self.size = workers
        self._owner_pid = os.getpid()
        self._result_q = ctx.Queue()
        self._workers = [_InRunWorker(ctx, self._result_q) for _ in range(workers)]
        self._payloads: Dict[int, bytes] = {}
        self._epoch = 0
        self._hgs: Dict[str, tuple] = {}  #: key -> (handle, fixed)
        self._hg_counter = 0
        self._task_counter = 0
        self._respawns = 0
        self._closed = False

    # -- context registration -------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _broadcast(self, msg) -> None:
        for worker in self._workers:
            worker.task_q.put(msg)

    def register_payload(self, blob: bytes) -> int:
        """Ship a ``build_payload`` blob to every worker; returns its
        epoch for use in :meth:`run_starts`."""
        self._epoch += 1
        self._payloads[self._epoch] = blob
        for old in sorted(self._payloads)[:-_PAYLOAD_KEEP]:
            del self._payloads[old]
        self._broadcast(("payload", self._epoch, blob))
        return self._epoch

    def share_hypergraph(
        self,
        hypergraph: Hypergraph,
        fixed_parts: Optional[List[Optional[int]]] = None,
    ) -> str:
        """Export ``hypergraph`` to shared memory and register the
        read-only view with every worker; returns the registration key."""
        key = f"hg{self._hg_counter}"
        self._hg_counter += 1
        handle = hypergraph.to_shared()
        fixed = list(fixed_parts) if fixed_parts is not None else None
        self._hgs[key] = (handle, fixed)
        self._broadcast(("hg", key, handle, fixed))
        return key

    def drop_hypergraph(self, key: str) -> None:
        """Unregister and unlink a shared hypergraph."""
        entry = self._hgs.pop(key, None)
        self._broadcast(("drophg", key))
        if entry is not None:
            unlink_handle(entry[0])

    # -- task dispatch with healing -------------------------------------
    def _next_task(self) -> int:
        self._task_counter += 1
        return self._task_counter

    def _heal(self, outstanding: Dict[int, Tuple[int, tuple]]) -> None:
        """Respawn dead workers, replay context, re-dispatch their tasks."""
        for idx, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            self._respawns += 1
            if self._respawns > _MAX_RESPAWNS:
                raise RuntimeError("in-run workers keep dying; giving up")
            fresh = _InRunWorker(self._ctx, self._result_q)
            self._workers[idx] = fresh
            for epoch in sorted(self._payloads):
                fresh.task_q.put(("payload", epoch, self._payloads[epoch]))
            for key, (handle, fixed) in self._hgs.items():
                fresh.task_q.put(("hg", key, handle, fixed))
            for task_id, (widx, msg) in outstanding.items():
                if widx == idx:
                    fresh.task_q.put(msg)

    def _collect(
        self, kind: str, outstanding: Dict[int, Tuple[int, tuple]]
    ) -> Dict[int, object]:
        results: Dict[int, object] = {}
        while outstanding:
            try:
                msg = self._result_q.get(timeout=_HEAL_POLL_SECONDS)
            except queue.Empty:
                self._heal(outstanding)
                continue
            mkind, task_id, status, data = msg
            if mkind != kind or task_id not in outstanding:
                # Stale duplicate: a worker replaced mid-task may have
                # answered before dying.  Determinism makes duplicates
                # identical, so dropping them is safe.
                continue
            if status != "ok":
                raise RuntimeError(f"in-run worker task failed:\n{data}")
            del outstanding[task_id]
            results[task_id] = data
        return results

    def proposals(
        self, key: str, scheme: str, count: int, max_net_size: int
    ) -> tuple:
        """Chunked proposals for ``count`` items (vertices or nets) of a
        registered hypergraph, stitched back in range order."""
        if count <= 0:
            if scheme == "net":
                return [], [], []
            return [0], [], [], []
        per = -(-count // self.size)
        chunks: List[Tuple[int, int]] = []
        lo = 0
        while lo < count:
            chunks.append((lo, min(count, lo + per)))
            lo += per
        outstanding: Dict[int, Tuple[int, tuple]] = {}
        order: List[int] = []
        for ci, (clo, chi) in enumerate(chunks):
            tid = self._next_task()
            msg = ("prop", tid, key, scheme, clo, chi, max_net_size)
            widx = ci % self.size
            self._workers[widx].task_q.put(msg)
            outstanding[tid] = (widx, msg)
            order.append(tid)
        results = self._collect("prop", outstanding)
        if scheme == "net":
            size_ok: List[bool] = []
            totals: List[float] = []
            conflicts: List[bool] = []
            for tid in order:
                s, t, c = results[tid]
                size_ok.extend(s)
                totals.extend(t)
                conflicts.extend(c)
            return size_ok, totals, conflicts
        offsets: List[int] = [0]
        nbrs: List[int] = []
        conns: List[float] = []
        touched: List[int] = []
        for tid in order:
            off, nb, cn, tc = results[tid]
            base = len(nbrs)
            offsets.extend(base + o for o in off[1:])
            nbrs.extend(nb)
            conns.extend(cn)
            touched.extend(tc)
        return offsets, nbrs, conns, touched

    def run_starts(
        self,
        epoch: int,
        plans: Sequence[tuple],
        with_assignment: bool = False,
    ) -> List[tuple]:
        """Run trial plans (as ``TrialPlan`` field tuples) across the
        pool; results return in plan order regardless of completion
        order (static round-robin placement keeps dispatch
        deterministic)."""
        outstanding: Dict[int, Tuple[int, tuple]] = {}
        order: List[int] = []
        for i, plan in enumerate(plans):
            tid = self._next_task()
            msg = ("run", tid, epoch, tuple(plan), with_assignment)
            widx = i % self.size
            self._workers[widx].task_q.put(msg)
            outstanding[tid] = (widx, msg)
            order.append(tid)
        results = self._collect("run", outstanding)
        return [results[tid] for tid in order]

    # -- shutdown --------------------------------------------------------
    def close(self) -> None:
        """Stop workers and unlink any still-registered shared segments.

        A no-op outside the owning process: forked children inherit the
        registry and must never tear down the parent's pool at exit.
        """
        if self._closed or os.getpid() != self._owner_pid:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_q.put(None)
            except Exception:
                pass
        for worker in self._workers:
            worker.process.join(timeout=_ORPHAN_POLL_SECONDS + 2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        for handle, _ in self._hgs.values():
            unlink_handle(handle)
        self._hgs.clear()


#: Process-wide pool registry: one persistent pool per worker count,
#: reused across runs so repeated ``run_multistart_pooled(workers=N)``
#: calls never pay spawn cost twice.
_POOLS: Dict[int, InRunPool] = {}


def get_inrun_pool(workers: int) -> InRunPool:
    """The process-wide persistent pool for ``workers`` (spawned on
    first use, reused afterwards)."""
    pool = _POOLS.get(workers)
    if pool is None or pool.closed:
        pool = InRunPool(workers)
        _POOLS[workers] = pool
    return pool


def close_inrun_pools() -> None:
    """Shut down every registered pool (atexit hook; also handy in
    tests)."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


atexit.register(close_inrun_pools)


# ----------------------------------------------------------------------
# Serial fixed-order merges (the deterministic reduction)
# ----------------------------------------------------------------------
# Each merge replays its serial kernel's selection loop verbatim against
# precomputed proposals: same shuffled visit order, same guard order,
# same strict comparisons, and ``coarsen_neighbors_touched`` charged
# only for vertices/nets the serial kernel would actually have
# accumulated for — so perf *count* fields stay exactly equal too.


def _merge_heavy_edge(
    hypergraph, rng, props, max_cluster_weight, fixed_parts, perf
) -> List[int]:
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    offsets, nbrs, conns, tch = props
    vwt = hypergraph._vertex_weights
    cluster = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    next_id = 0
    touched = 0
    for v in order:
        if cluster[v] != -1:
            continue
        touched += tch[v]
        wv = vwt[v]
        best_u = -1
        best_c = 0.0
        for t in range(offsets[v], offsets[v + 1]):
            u = nbrs[t]
            if cluster[u] != -1:
                continue
            if wv + vwt[u] > max_cluster_weight:
                continue
            if fixed_parts is not None and _fixed_conflict(fixed_parts, v, u):
                continue
            c = conns[t]
            if c > best_c:
                best_c = c
                best_u = u
        cluster[v] = next_id
        if best_u != -1:
            cluster[best_u] = next_id
        next_id += 1
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def _merge_first_choice(
    hypergraph, rng, props, max_cluster_weight, fixed_parts, perf
) -> List[int]:
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    offsets, nbrs, conns, tch = props
    vwt = hypergraph._vertex_weights
    cluster = [-1] * n
    cluster_weight: List[float] = []
    cluster_fixed: List[Optional[int]] = []
    order = list(range(n))
    rng.shuffle(order)
    touched = 0
    for v in order:
        if cluster[v] != -1:
            continue
        touched += tch[v]
        wv = vwt[v]
        fv = fixed_parts[v] if fixed_parts is not None else None
        best_cluster = -1
        best_c = 0.0
        for t in range(offsets[v], offsets[v + 1]):
            u = nbrs[t]
            cu = cluster[u]
            if cu == -1:
                continue
            if cluster_weight[cu] + wv > max_cluster_weight:
                continue
            cf = cluster_fixed[cu]
            if fv is not None and cf is not None and fv != cf:
                continue
            c = conns[t]
            if c > best_c:
                best_c = c
                best_cluster = cu
        if best_cluster == -1:
            cluster[v] = len(cluster_weight)
            cluster_weight.append(wv)
            cluster_fixed.append(fv)
        else:
            cluster[v] = best_cluster
            cluster_weight[best_cluster] += wv
            if fv is not None:
                cluster_fixed[best_cluster] = fv
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


def _merge_hyperedge(
    hypergraph, rng, props, max_cluster_weight, fixed_parts, perf
) -> List[int]:
    n = hypergraph.num_vertices
    if max_cluster_weight is None:
        max_cluster_weight = _default_cluster_cap(hypergraph)
    size_ok, totals, conflicts = props
    net_ptr, net_pins, _, _ = hypergraph.raw_csr
    net_weights = hypergraph._net_weights
    cluster = [-1] * n
    order = list(hypergraph.nets())
    rng.shuffle(order)
    order.sort(key=lambda e: (-net_weights[e], net_ptr[e + 1] - net_ptr[e]))
    next_id = 0
    touched = 0
    for e in order:
        if not size_ok[e]:
            continue
        lo = net_ptr[e]
        hi = net_ptr[e + 1]
        touched += hi - lo
        free = True
        for i in range(lo, hi):
            if cluster[net_pins[i]] != -1:
                free = False
                break
        if not free:
            continue
        if totals[e] > max_cluster_weight:
            continue
        if fixed_parts is not None and conflicts[e]:
            continue
        for i in range(lo, hi):
            cluster[net_pins[i]] = next_id
        next_id += 1
    for v in range(n):
        if cluster[v] == -1:
            cluster[v] = next_id
            next_id += 1
    if perf is not None:
        perf.coarsen_neighbors_touched += touched
    return cluster


_VERTEX_MERGES = {
    "heavy_edge": _merge_heavy_edge,
    "first_choice": _merge_first_choice,
}


def parallel_clustering(
    scheme: str,
    hypergraph: Hypergraph,
    rng: random.Random,
    pool: InRunPool,
    max_cluster_weight: Optional[float] = None,
    max_net_size: int = 40,
    fixed_parts: Optional[List[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
) -> List[int]:
    """One clustering pass: parallel proposals, serial fixed-order merge.

    Bit-identical to the serial kernel of the same ``scheme`` under the
    same ``rng`` state (the merge consumes exactly one ``rng.shuffle``,
    like the kernel).
    """
    if scheme == "hyperedge":
        count = hypergraph.num_nets
    elif scheme in _VERTEX_MERGES:
        count = hypergraph.num_vertices
    else:
        raise ValueError(f"unknown clustering scheme {scheme!r}")
    key = pool.share_hypergraph(
        hypergraph, fixed_parts if scheme == "hyperedge" else None
    )
    try:
        t0 = time.perf_counter()
        if scheme == "hyperedge":
            props = pool.proposals(key, "net", count, max_net_size)
        else:
            props = pool.proposals(key, "vertex", count, max_net_size)
        t1 = time.perf_counter()
        if scheme == "hyperedge":
            cluster = _merge_hyperedge(
                hypergraph, rng, props, max_cluster_weight, fixed_parts, perf
            )
        else:
            cluster = _VERTEX_MERGES[scheme](
                hypergraph, rng, props, max_cluster_weight, fixed_parts, perf
            )
        if perf is not None:
            t2 = time.perf_counter()
            perf.inrun_proposal_seconds += t1 - t0
            perf.inrun_merge_seconds += t2 - t1
        return cluster
    finally:
        pool.drop_hypergraph(key)


def build_hierarchy_parallel(
    hypergraph: Hypergraph,
    config,
    rng: random.Random,
    pool: InRunPool,
    fixed_parts: Optional[Sequence[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> Hierarchy:
    """Parallel-proposal counterpart of
    :func:`~repro.multilevel.pool.build_hierarchy` (kernel path only —
    the frozen oracle stays serial by definition).  Level guards,
    fixed-side projection and contraction are shared code; only the
    clustering pass differs, and it is bit-identical, so the returned
    hierarchy equals the serial one level for level.  ``backend``
    selects the contraction kernel (the chunked proposal/merge passes
    stay interpreted — they are already fanned out across workers).
    """
    t0 = time.perf_counter() if perf is not None else 0.0
    if backend is None:
        backend = config_backend(config)
    levels: List[Tuple[object, Optional[List[Optional[int]]]]] = []
    hg = hypergraph
    # Truthiness on purpose — must agree with build_hierarchy (see its
    # fixed_parts note).
    fixed = list(fixed_parts) if fixed_parts else None
    while hg.num_vertices > config.coarsest_size:
        cluster = parallel_clustering(
            config.clustering, hg, rng, pool, fixed_parts=fixed, perf=perf
        )
        level = coarsen(hg, cluster, perf=perf, backend=backend)
        if level.coarse.num_vertices >= hg.num_vertices:
            break  # stall guard, same as build_hierarchy
        if level.coarse.num_vertices > hg.num_vertices / config.min_reduction:
            break
        coarse_fixed = project_fixed(level, fixed)
        levels.append((level, fixed))
        if perf is not None:
            perf.coarsen_levels += 1
        hg = level.coarse
        fixed = coarse_fixed
    if perf is not None:
        perf.coarsen_seconds += time.perf_counter() - t0
        perf.hierarchies_built += 1
    return Hierarchy(
        hypergraph=hypergraph,
        levels=levels,
        coarsest=hg,
        coarsest_fixed=fixed,
        fixed_signature=tuple(fixed_parts) if fixed_parts else None,
        seed=seed,
        oracle=False,
    )


# ----------------------------------------------------------------------
# Multistart fan-out
# ----------------------------------------------------------------------
def run_starts_pooled(
    pool: InRunPool,
    partitioner,
    hypergraph: Hypergraph,
    num_starts: int,
    instance_name: str = "",
    base_seed: int = 0,
    pool_size: int = 2,
    fixed_parts: Optional[Sequence[Optional[int]]] = None,
    perf: Optional[PerfCounters] = None,
) -> MultistartResult:
    """Parallel leg of
    :func:`~repro.multilevel.pool.run_multistart_pooled`.

    Ships one ``build_payload`` context (partitioner + shm instance
    handle, sticky caches on so workers share pooled coarsening exactly
    as the serial driver does) and fans the starts out; records are
    reassembled in start order with the serial strict-``<`` best
    selection, so the stream is bit-identical to the serial driver's.
    """
    if num_starts < 1:
        raise ValueError("num_starts must be >= 1")
    if not supports_hierarchy(partitioner):
        raise ValueError(
            "partitioner cannot draw from a hierarchy pool; "
            "in-run fan-out requires hierarchy support"
        )
    from repro.orchestrate.executor import build_payload

    name = getattr(partitioner, "name", type(partitioner).__name__)
    label = instance_name or "instance"
    handle = hypergraph.to_shared()
    t0 = time.perf_counter()
    try:
        blob = build_payload(
            {name: partitioner},
            {label: handle},
            fixed_parts={label: list(fixed_parts)} if fixed_parts else None,
            sticky_cache=True,
            sticky_pool_size=pool_size,
        )
        epoch = pool.register_payload(blob)
        plans = [
            (i, name, label, base_seed + i, i) for i in range(num_starts)
        ]
        payloads = pool.run_starts(epoch, plans, with_assignment=True)
    finally:
        unlink_handle(handle)
    if perf is not None:
        perf.inrun_fanout_seconds += time.perf_counter() - t0
    result = MultistartResult(heuristic=name, instance=instance_name)
    best_cut = float("inf")
    for i, (cut, elapsed, legal, _k, _objective, assignment) in enumerate(
        payloads
    ):
        result.starts.append(
            StartRecord(
                seed=base_seed + i,
                cut=cut,
                runtime_seconds=elapsed,
                legal=legal,
            )
        )
        if cut < best_cut:
            best_cut = cut
            result.best_assignment = list(assignment)
    return result
