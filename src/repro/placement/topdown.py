"""Top-down global placement by recursive min-cut bisection.

This is the paper's driving application (Section 2.1): "a modern
top-down standard-cell placement tool might perform ... recursive
min-cut bisection of a cell-level netlist to obtain a coarse placement".
It also realizes the paper's observation that *almost all partitioning
instances in this flow have many fixed vertices* due to terminal
propagation — each sub-instance the placer creates fixes one dummy
terminal per external net (Dunlop-Kernighan style).

The flow:

1. Start with every movable cell in one region.
2. Bisect the region's cells with a configurable 2-way partitioner
   (flat FM, CLIP or multilevel), with terminals propagated from cells
   already assigned to other regions.
3. Split the region geometrically in proportion to the area assigned to
   each side; recurse until regions are small; spread cells in a grid.

Quality is measured by half-perimeter wirelength (HPWL), the standard
coarse-placement objective.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.partitioner import FMPartitioner
from repro.hypergraph.hypergraph import Hypergraph
from repro.placement.regions import Region, spread_cells_in_region


@dataclass
class Placement:
    """Cell coordinates plus flow statistics."""

    positions: Dict[int, Tuple[float, float]]
    hypergraph: Hypergraph
    num_partitioning_calls: int = 0
    num_fixed_terminals: int = 0  #: total dummy terminals across calls
    runtime_seconds: float = 0.0
    leaf_regions: List[Region] = field(default_factory=list)

    def hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets."""
        total = 0.0
        for e in self.hypergraph.nets():
            pins = self.hypergraph.pins_of(e)
            if len(pins) < 2:
                continue
            xs = [self.positions[v][0] for v in pins]
            ys = [self.positions[v][1] for v in pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


class TopDownPlacer:
    """Recursive min-cut bisection placer.

    Parameters
    ----------
    partitioner:
        Any object following the bipartitioner protocol; defaults to a
        flat FM with the strong configuration.  A multilevel
        partitioner gives better wirelength at more CPU — exactly the
        quality/runtime tradeoff the use model bounds.
    min_region_cells:
        Regions at or below this size are placed directly.
    die_width / die_height:
        Dimensions of the (abstract) die.
    terminal_propagation:
        When True (default), external pins of spanning nets become fixed
        dummy terminals in each sub-instance.  Disabling it shows the
        wirelength cost of ignoring the use model.
    """

    def __init__(
        self,
        partitioner=None,
        min_region_cells: int = 12,
        die_width: float = 100.0,
        die_height: float = 100.0,
        terminal_propagation: bool = True,
        seed: int = 0,
    ) -> None:
        self.partitioner = (
            partitioner if partitioner is not None else FMPartitioner(tolerance=0.1)
        )
        self.min_region_cells = min_region_cells
        self.die_width = die_width
        self.die_height = die_height
        self.terminal_propagation = terminal_propagation
        self.seed = seed

    # ------------------------------------------------------------------
    def place(self, hypergraph: Hypergraph) -> Placement:
        """Place every cell of ``hypergraph`` on the die."""
        t0 = time.perf_counter()
        rng = random.Random(self.seed)
        placement = Placement(positions={}, hypergraph=hypergraph)
        root = Region(
            0.0,
            0.0,
            self.die_width,
            self.die_height,
            tuple(range(hypergraph.num_vertices)),
        )
        # Current (approximate) position of every cell = center of the
        # region it currently occupies; refined as recursion deepens.
        centers: Dict[int, Tuple[float, float]] = {
            v: root.center for v in root.cells
        }
        stack = [root]
        while stack:
            region = stack.pop()
            if len(region.cells) <= self.min_region_cells:
                order = sorted(region.cells)
                for cell, x, y in spread_cells_in_region(region, order):
                    placement.positions[cell] = (x, y)
                placement.leaf_regions.append(region)
                continue
            child0, child1 = self._bisect(
                hypergraph, region, centers, placement, rng
            )
            for child in (child0, child1):
                for v in child.cells:
                    centers[v] = child.center
                stack.append(child)
        placement.runtime_seconds = time.perf_counter() - t0
        return placement

    # ------------------------------------------------------------------
    def _bisect(
        self,
        hypergraph: Hypergraph,
        region: Region,
        centers: Dict[int, Tuple[float, float]],
        placement: Placement,
        rng: random.Random,
    ) -> Tuple[Region, Region]:
        cells = list(region.cells)
        inside = set(cells)
        vertical = region.cut_vertically()
        cx, cy = region.center

        # Build the sub-instance: region cells, plus one zero-area fixed
        # terminal per net that crosses the region boundary.
        local_id = {v: i for i, v in enumerate(cells)}
        sub_nets: List[List[int]] = []
        sub_weights = [hypergraph.vertex_weight(v) for v in cells]
        fixed_parts: List[Optional[int]] = [None] * len(cells)
        seen_nets = set()
        num_terminals = 0
        for v in cells:
            for e in hypergraph.nets_of(v):
                if e in seen_nets:
                    continue
                seen_nets.add(e)
                pins = hypergraph.pins_of(e)
                local = [local_id[u] for u in pins if u in inside]
                if len(local) == 0:
                    continue
                external = [u for u in pins if u not in inside]
                if external and self.terminal_propagation:
                    # Terminal propagation: the net's external pins pull
                    # toward their average current position; the dummy
                    # terminal is fixed on the side of the cutline
                    # nearer that pull.
                    ex = sum(centers[u][0] for u in external) / len(external)
                    ey = sum(centers[u][1] for u in external) / len(external)
                    side = (
                        0 if (ex <= cx if vertical else ey <= cy) else 1
                    )
                    term = len(sub_weights)
                    sub_weights.append(0.0)
                    fixed_parts.append(side)
                    local.append(term)
                    num_terminals += 1
                if len(local) >= 2:
                    sub_nets.append(local)

        sub = Hypergraph(
            sub_nets, num_vertices=len(sub_weights), vertex_weights=sub_weights
        )
        result = self.partitioner.partition(
            sub, seed=rng.randrange(1 << 30), fixed_parts=fixed_parts
        )
        placement.num_partitioning_calls += 1
        placement.num_fixed_terminals += num_terminals

        side0 = tuple(
            v for v in cells if result.assignment[local_id[v]] == 0
        )
        side1 = tuple(
            v for v in cells if result.assignment[local_id[v]] == 1
        )
        if not side0 or not side1:
            # Degenerate split (tiny or fully fixed instance): halve
            # arbitrarily to guarantee progress.
            mid = len(cells) // 2
            side0, side1 = tuple(cells[:mid]), tuple(cells[mid:])

        area0 = sum(hypergraph.vertex_weight(v) for v in side0)
        area1 = sum(hypergraph.vertex_weight(v) for v in side1)
        fraction = area0 / max(area0 + area1, 1e-12)
        fraction = min(max(fraction, 0.1), 0.9)
        return region.split(vertical, fraction, side0, side1)
