"""Placement regions for top-down recursive bisection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Region:
    """An axis-aligned placement region holding a set of cells.

    Coordinates follow the usual CAD convention: ``(x0, y0)`` lower-left,
    ``(x1, y1)`` upper-right.
    """

    x0: float
    y0: float
    x1: float
    y1: float
    cells: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError("degenerate region")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def area(self) -> float:
        return self.width * self.height

    def cut_vertically(self) -> bool:
        """Preferred cut direction: split the longer side.

        A vertical cutline divides the x-range — chosen when the region
        is wider than tall.
        """
        return self.width >= self.height

    def split(
        self,
        vertical: bool,
        fraction: float,
        cells0: Tuple[int, ...],
        cells1: Tuple[int, ...],
    ) -> Tuple["Region", "Region"]:
        """Split the region at ``fraction`` of its extent.

        ``fraction`` is the share of the geometric extent given to side
        0 — normally the share of total cell area assigned there, so
        both halves have similar density.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        if vertical:
            xm = self.x0 + self.width * fraction
            return (
                Region(self.x0, self.y0, xm, self.y1, cells0),
                Region(xm, self.y0, self.x1, self.y1, cells1),
            )
        ym = self.y0 + self.height * fraction
        return (
            Region(self.x0, self.y0, self.x1, ym, cells0),
            Region(self.x0, ym, self.x1, self.y1, cells1),
        )


def spread_cells_in_region(
    region: Region, order: List[int]
) -> List[Tuple[int, float, float]]:
    """Place ``order``'s cells on a uniform grid inside ``region``.

    The final legalization step of the toy flow: once regions are small,
    cells are spread row-major over a near-square grid.  Returns
    ``(cell, x, y)`` triples.
    """
    k = len(order)
    if k == 0:
        return []
    import math

    cols = max(1, int(math.ceil(math.sqrt(k))))
    rows = max(1, int(math.ceil(k / cols)))
    out = []
    for i, cell in enumerate(order):
        r, c = divmod(i, cols)
        x = region.x0 + (c + 0.5) * region.width / cols
        y = region.y0 + (r + 0.5) * region.height / rows
        out.append((cell, x, y))
    return out
