"""Detailed placement by stochastic hill-climbing (paper Section 2.1).

The use model: a coarse placement from recursive min-cut bisection "is
then refined into a detailed placement by stochastic hill-climbing
search".  This module completes that flow: starting from a
:class:`~repro.placement.topdown.Placement`, it improves half-perimeter
wirelength (HPWL) by annealed cell swaps and relocations.

HPWL is maintained incrementally with per-net bounding boxes; a swap's
delta is evaluated exactly on the touched nets only.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.placement.topdown import Placement


@dataclass
class DetailedPlacementResult:
    """Outcome of detailed placement refinement."""

    positions: Dict[int, Tuple[float, float]]
    initial_hpwl: float
    final_hpwl: float
    moves_accepted: int
    moves_proposed: int
    runtime_seconds: float

    @property
    def improvement_percent(self) -> float:
        if self.initial_hpwl == 0:
            return 0.0
        return 100.0 * (1.0 - self.final_hpwl / self.initial_hpwl)


class DetailedPlacer:
    """Annealed swap/relocate refinement of a coarse placement.

    Parameters
    ----------
    moves_per_cell:
        Proposed moves per temperature step, as a multiple of the cell
        count.
    cooling:
        Geometric cooling factor.
    initial_temperature_fraction:
        Starting temperature as a fraction of the average net HPWL —
        high enough to accept moderate uphill moves early.
    relocate_probability:
        Probability that a proposal relocates one cell to a random
        position near a random peer instead of swapping two cells.
        Swaps permute the existing (legal, overlap-free) slot set, so
        the default is swap-only; relocation is free-form — it ignores
        overlap and is only appropriate when a later legalization step
        will restore non-overlap.
    """

    def __init__(
        self,
        moves_per_cell: float = 4.0,
        cooling: float = 0.85,
        min_temperature_factor: float = 1e-3,
        initial_temperature_fraction: float = 0.5,
        relocate_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.moves_per_cell = moves_per_cell
        self.cooling = cooling
        self.min_temperature_factor = min_temperature_factor
        self.initial_temperature_fraction = initial_temperature_fraction
        self.relocate_probability = relocate_probability
        self.seed = seed

    # ------------------------------------------------------------------
    def refine(self, placement: Placement) -> DetailedPlacementResult:
        """Refine ``placement`` (not mutated); returns new positions."""
        t0 = time.perf_counter()
        hg = placement.hypergraph
        rng = random.Random(self.seed)
        pos: Dict[int, Tuple[float, float]] = dict(placement.positions)
        cells = sorted(pos)
        initial_hpwl = _total_hpwl(hg, pos)

        num_real_nets = max(
            1, sum(1 for e in hg.nets() if hg.net_size(e) >= 2)
        )
        temperature = (
            self.initial_temperature_fraction
            * initial_hpwl
            / num_real_nets
        )
        floor = max(temperature * self.min_temperature_factor, 1e-12)
        moves_per_step = max(32, int(self.moves_per_cell * len(cells)))

        current = initial_hpwl
        accepted_total = 0
        proposed_total = 0
        while temperature > floor:
            accepted = 0
            for _ in range(moves_per_step):
                proposed_total += 1
                if rng.random() < self.relocate_probability:
                    delta, undo = self._propose_relocate(hg, pos, cells, rng)
                else:
                    delta, undo = self._propose_swap(hg, pos, cells, rng)
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    current += delta
                    accepted += 1
                    accepted_total += 1
                else:
                    undo()
            temperature *= self.cooling
            if accepted == 0:
                break

        final_hpwl = _total_hpwl(hg, pos)
        return DetailedPlacementResult(
            positions=pos,
            initial_hpwl=initial_hpwl,
            final_hpwl=final_hpwl,
            moves_accepted=accepted_total,
            moves_proposed=proposed_total,
            runtime_seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def _propose_swap(self, hg, pos, cells, rng):
        a = cells[rng.randrange(len(cells))]
        b = cells[rng.randrange(len(cells))]
        if a == b:
            return 0.0, lambda: None
        nets = set(hg.nets_of(a)) | set(hg.nets_of(b))
        before = _hpwl_of_nets(hg, pos, nets)
        pos[a], pos[b] = pos[b], pos[a]
        delta = _hpwl_of_nets(hg, pos, nets) - before

        def undo():
            pos[a], pos[b] = pos[b], pos[a]

        return delta, undo

    def _propose_relocate(self, hg, pos, cells, rng):
        a = cells[rng.randrange(len(cells))]
        anchor = cells[rng.randrange(len(cells))]
        ax, ay = pos[anchor]
        new = (ax + rng.uniform(-2, 2), ay + rng.uniform(-2, 2))
        nets = set(hg.nets_of(a))
        before = _hpwl_of_nets(hg, pos, nets)
        old = pos[a]
        pos[a] = new
        delta = _hpwl_of_nets(hg, pos, nets) - before

        def undo():
            pos[a] = old

        return delta, undo


def _hpwl_of_nets(hg: Hypergraph, pos, nets) -> float:
    total = 0.0
    for e in nets:
        pins = hg.pins_of(e)
        if len(pins) < 2:
            continue
        xs = [pos[v][0] for v in pins]
        ys = [pos[v][1] for v in pins]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def _total_hpwl(hg: Hypergraph, pos) -> float:
    return _hpwl_of_nets(hg, pos, hg.nets())
