"""Routing-congestion estimation over a placement.

The paper's use model is "timing- and routing congestion-driven
recursive min-cut bisection"; a congestion estimate is the signal such a
flow feeds back into partitioning.  This module provides the standard
probabilistic bounding-box estimator: the die is gridded into bins and
every net spreads one unit of horizontal and vertical routing demand
uniformly over the bins its bounding box covers (the classic RISA-style
first-order model, without the bend-probability refinement).

Outputs are per-bin demand maps plus the summary statistics a
congestion-driven flow consumes (peak and average demand, overflowed
bin count against a uniform capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.placement.topdown import Placement


@dataclass
class CongestionMap:
    """Gridded routing-demand estimate for one placement."""

    bins_x: int
    bins_y: int
    die_width: float
    die_height: float
    demand: List[List[float]]  #: ``demand[ix][iy]``

    @property
    def peak(self) -> float:
        """Maximum per-bin demand."""
        return max(max(col) for col in self.demand)

    @property
    def average(self) -> float:
        """Mean per-bin demand."""
        total = sum(sum(col) for col in self.demand)
        return total / (self.bins_x * self.bins_y)

    def overflowed_bins(self, capacity: float) -> int:
        """Bins whose demand exceeds ``capacity``."""
        return sum(
            1 for col in self.demand for d in col if d > capacity
        )

    def hotspot(self) -> Tuple[int, int]:
        """Grid index of the most congested bin."""
        best = (0, 0)
        best_d = -1.0
        for ix, col in enumerate(self.demand):
            for iy, d in enumerate(col):
                if d > best_d:
                    best_d = d
                    best = (ix, iy)
        return best


def estimate_congestion(
    placement: Placement,
    bins_x: int = 16,
    bins_y: int = 16,
    die_width: float = 100.0,
    die_height: float = 100.0,
) -> CongestionMap:
    """Estimate routing congestion of ``placement``.

    Each net with >= 2 pins contributes demand equal to its estimated
    wirelength — ``net_weight * (bbox half-perimeter)`` — spread
    uniformly over the grid bins intersecting its pin bounding box
    (degenerate zero-area boxes land in their single bin with a minimum
    one-bin-pitch wirelength).  Total demand therefore equals the
    placement's weighted HPWL (up to the degenerate-net floor), so
    spread-out placements genuinely cost more routing, as they do in a
    real router.
    """
    if bins_x < 1 or bins_y < 1:
        raise ValueError("bin counts must be >= 1")
    hg = placement.hypergraph
    demand = [[0.0] * bins_y for _ in range(bins_x)]
    bin_w = die_width / bins_x
    bin_h = die_height / bins_y

    def bin_index(x: float, y: float) -> Tuple[int, int]:
        ix = min(bins_x - 1, max(0, int(x / bin_w)))
        iy = min(bins_y - 1, max(0, int(y / bin_h)))
        return ix, iy

    for e in hg.nets():
        pins = hg.pins_of(e)
        if len(pins) < 2:
            continue
        xs = [placement.positions[v][0] for v in pins]
        ys = [placement.positions[v][1] for v in pins]
        ix0, iy0 = bin_index(min(xs), min(ys))
        ix1, iy1 = bin_index(max(xs), max(ys))
        num_bins = (ix1 - ix0 + 1) * (iy1 - iy0 + 1)
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        wirelength = max(hpwl, min(bin_w, bin_h))
        share = hg.net_weight(e) * wirelength / num_bins
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                demand[ix][iy] += share

    return CongestionMap(
        bins_x=bins_x,
        bins_y=bins_y,
        die_width=die_width,
        die_height=die_height,
        demand=demand,
    )
