"""Top-down placement — the application context that motivates the
paper's partitioning use model (speed, fixed terminals, tight runtime
budgets)."""

from repro.placement.congestion import CongestionMap, estimate_congestion
from repro.placement.detailed import DetailedPlacementResult, DetailedPlacer
from repro.placement.regions import Region, spread_cells_in_region
from repro.placement.topdown import Placement, TopDownPlacer

__all__ = [
    "CongestionMap",
    "DetailedPlacementResult",
    "DetailedPlacer",
    "Placement",
    "Region",
    "TopDownPlacer",
    "estimate_congestion",
    "spread_cells_in_region",
]
